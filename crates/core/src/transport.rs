//! Remote transport: the ecovisor protocol over TCP — duplex since v2.
//!
//! PR 1 made every API call a wire-serializable message; this module puts
//! those messages on an actual wire, so an application binary can drive
//! an ecovisor in another process (the deployment shape of §3: tenants
//! are untrusted and live outside the energy-system virtualization
//! layer). [`EcovisorServer`] owns the ecovisor and answers
//! [`RequestBatch`] frames; [`RemoteEcovisorClient`] implements the same
//! [`EnergyClient`] method surface as the in-process handle, so
//! application code is transport-agnostic.
//!
//! Since protocol **v2** the wire is *duplex*: the server does not only
//! answer, it also **pushes** — after every settlement, subscribed
//! connections receive the [`EventFrame`]s carrying the paper's Table 2
//! asynchronous upcalls (`notify_solar_change`, `notify_carbon_change`,
//! `notify_battery_full/empty`, budget exhaustion), so a remote
//! application reacts to energy variability without polling.
//!
//! ## Wire format
//!
//! Every message travels as a **transport frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 LE | payload (length B)  |
//! +----------------+---------------------+
//! ```
//!
//! Frames longer than [`MAX_FRAME_LEN`] are rejected (the read side never
//! allocates more than the peer has actually earned the right to send).
//!
//! What a payload *is* depends on the negotiated protocol version:
//!
//! * **v1** — exactly the old request/response wire: one [`RequestBatch`]
//!   (client → server) or [`ResponseBatch`] (server → client) per frame,
//!   byte-identical to how a v1-only server served it;
//! * **v2** — one [`Frame`] (`Request` | `Response` | `Event` |
//!   `Control`), the kind travelling with the message so the server may
//!   speak first.
//!
//! ## Hello: versions, codec, credential
//!
//! The first frame in each direction is a **hello**, always encoded as
//! JSON so negotiation itself is codec-independent. A v2 client sends a
//! [`ClientHelloV2`] advertising a **version list**, its codec
//! preference, and (optionally) a per-app **credential token**; a legacy
//! client sends the v1 [`ClientHello`] with its single version. The
//! server answers [`ServerHello::Accept`] naming the **highest shared
//! version** and the negotiated codec, or [`ServerHello::Reject`] with a
//! reason, after which it closes the connection.
//!
//! The server **pins the connection to the hello's `AppId`**: any later
//! batch claiming a different app scope is denied with error values
//! without touching the dispatcher. When the server is built
//! [`with_credentials`](EcovisorServer::with_credentials), pinning
//! upgrades from integrity to **authentication**: a v2 hello must carry
//! the app's credential token (verified in constant time against the
//! server-side [`CredentialRegistry`]) before any batch is served, and
//! credential-less v1 hellos are rejected outright. Without a registry
//! the listener stays open (trusted-network mode), exactly as in v1.
//!
//! ## Event push
//!
//! A v2 connection subscribes by sending
//! [`EnergyRequest::SubscribeEvents`] (the transport interprets it for
//! the connection that sent it; the dispatcher just acknowledges). From
//! then on, the server's post-settlement broadcast hook (registered on
//! the [`ShardedEcovisor`] at bind time, run inside the settlement
//! barrier — see [`ShardedEcovisor::on_settlement`]) drains each
//! subscribed app's outbox into an [`EventFrame`] stamped with the
//! settlement tick and writes it, delivery-filtered per subscriber, to
//! every subscribed connection of that app. Each connection is split
//! into a **reader half** (owned by whichever loop reads frames) and a
//! **writer half** (a cloned stream behind a mutex feeding a committed
//! write queue), so response writes and broadcast pushes interleave at
//! frame granularity, never mid-frame.
//!
//! ## Concurrency model
//!
//! [`EcovisorServer::spawn`] runs the **evented runtime** (see the
//! `evented` submodule): one reactor thread drives non-blocking
//! accept/read/write for *every* connection through the vendored
//! epoll-backed [`reactor`] shim, and complete inbound frames are
//! dispatched on a small worker pool
//! ([`with_workers`](EcovisorServer::with_workers), auto-sized by
//! default) — thousands of tenants multiplex onto a handful of threads,
//! and no thread is ever pinned to a client. Frames on one connection
//! are still served strictly in order (a connection is owned by at most
//! one worker at a time), so per-connection semantics are identical to
//! the embeddable blocking loop
//! ([`serve_connection`](EcovisorServer::serve_connection)), which
//! shares the same per-frame processing code. All of them dispatch into
//! one shared [`ShardedEcovisor`] (an `Arc<ShardedEcovisor>` — the
//! [`SharedEcovisor`] alias). Per-app state is sharded behind its own
//! lock, so batches from different tenants — and query-only batches
//! from the *same* tenant — execute in parallel rather than serializing
//! on a global mutex; workers simply park on shard/settlement lock
//! acquisition. The driver loop (whoever ticks the simulation) calls
//! [`ShardedEcovisor::tick`] between batches; that settlement barrier
//! is the only cross-tenant synchronization, and it is where event
//! frames are pushed.
//!
//! A connection that fails mid-frame (peer crash, network drop) is
//! logged to stderr, deregistered from the push registry and the
//! reactor, and dropped from
//! [`ServerHandle::active_connections`], so a long-lived server never
//! accumulates dead connections. A server built
//! [`with_read_timeout`](EcovisorServer::with_read_timeout) additionally
//! reaps **idle** connections: a dead subscriber that holds a push
//! stream without ever sending another frame trips the timeout and is
//! collected the same way (the timeout also bounds writes, so a wedged
//! subscriber cannot hold the settlement barrier hostage).
//! [`ServerHandle::shutdown`] is deterministic: it wakes the reactor
//! (which closes every socket and the listener), stops the worker
//! queue, and joins all threads — no step waits on a timeout.
//!
//! ## Example
//!
//! Serve an ecovisor on loopback and drive it remotely — the client
//! speaks the same [`EnergyClient`] methods as the in-process handle,
//! and (on v2) receives pushed events:
//!
//! ```
//! use ecovisor::{EcovisorBuilder, EcovisorServer, EnergyClient, EnergyShare,
//!                EventFilter, RemoteEcovisorClient, WireCodec, PROTOCOL_VERSION};
//! use simkit::units::Watts;
//!
//! let mut eco = EcovisorBuilder::new().build();
//! let app = eco.register_app("tenant", EnergyShare::grid_only()).unwrap();
//!
//! let server = EcovisorServer::bind("127.0.0.1:0", eco).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut api = RemoteEcovisorClient::connect(handle.addr(), app).unwrap();
//! assert_eq!(api.codec(), WireCodec::Binary);       // negotiated in the hello
//! assert_eq!(api.version(), PROTOCOL_VERSION);      // highest shared version
//! api.subscribe_events(EventFilter::all()).unwrap();
//! assert_eq!(api.get_grid_power(), Watts::ZERO);
//!
//! // The driver ticks settlement between batches; pushed event frames
//! // (if any fired) surface through `api.events()`.
//! handle.ecovisor().tick();
//! let _events = api.events();
//!
//! drop(api);
//! handle.shutdown();
//! ```
//!
//! [`ProtocolTrace`]: crate::dispatch::ProtocolTrace

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use container_cop::AppId;
use serde::{Deserialize, Serialize};

use crate::client::{EnergyClient, EventHandler};
use crate::ecovisor::Ecovisor;
use crate::event::{EventFilter, Notification, OutboxPolicy};
use crate::proto::{
    ControlFrame, EnergyRequest, EnergyResponse, EventFrame, Frame, ProtoError, RequestBatch,
    ResponseBatch, PROTOCOL_V1, PROTOCOL_VERSION, SUPPORTED_VERSIONS,
};
use crate::shard::ShardedEcovisor;
use crate::snapshot::Snapshot;

mod evented;

/// Upper bound on a single frame's payload, so a hostile peer cannot make
/// the read side allocate unboundedly.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Payload bytes carried per [`EnergyResponse::SnapshotChunk`] /
/// [`EnergyRequest::Restore`] chunk on the admin checkpoint surface:
/// large enough that a realistic snapshot moves in a handful of frames,
/// small enough that a chunk never competes with [`MAX_FRAME_LEN`].
pub const SNAPSHOT_CHUNK_LEN: usize = 256 * 1024;

/// Ceiling on a reassembling [`EnergyRequest::Restore`] payload, so even
/// an authenticated operator connection cannot grow the assembly buffer
/// without bound.
const MAX_RESTORE_LEN: usize = 256 * 1024 * 1024;

/// Ceiling on one connection's committed-but-unwritten wire bytes. A
/// subscriber may hang and recover (its frames queue, see
/// [`PendingWrites`]); one that also keeps *sending* while never reading
/// would grow the response backlog without bound, and is cut off here.
const MAX_PENDING_BYTES: usize = 64 * 1024 * 1024;

/// A wire encoding for protocol payloads, negotiated per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireCodec {
    /// Human-readable JSON ([`serde::json`]).
    Json,
    /// Compact tag-byte + varint encoding ([`serde::binary`]).
    Binary,
}

impl WireCodec {
    /// Every codec this build speaks, in default preference order
    /// (binary first: it is the fast path the negotiation exists for).
    pub fn preferred() -> Vec<WireCodec> {
        vec![WireCodec::Binary, WireCodec::Json]
    }

    /// Encodes a value in this codec's byte form.
    pub fn encode<T: Serialize>(&self, t: &T) -> Vec<u8> {
        match self {
            WireCodec::Json => serde::json::to_string(t).into_bytes(),
            WireCodec::Binary => serde::binary::to_bytes(t),
        }
    }

    /// Decodes a value from this codec's byte form.
    ///
    /// # Errors
    ///
    /// On malformed input or a tree that does not match `T`.
    pub fn decode<T: Deserialize>(&self, bytes: &[u8]) -> Result<T, serde::Error> {
        match self {
            WireCodec::Json => {
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| serde::Error::custom("frame is not utf-8"))?;
                serde::json::from_str(text)
            }
            WireCodec::Binary => serde::binary::from_bytes(bytes),
        }
    }
}

/// The legacy (v1) hello, first frame of a connection, client → server
/// (always JSON). A v1-only client still sends exactly this and is
/// served exactly as before; new clients send [`ClientHelloV2`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientHello {
    /// The single protocol version the client speaks.
    pub version: u16,
    /// The tenant this connection acts for. The server **pins** the
    /// connection to this scope: every subsequent batch must carry the
    /// same `app`. Client-asserted — see the module docs for why this
    /// is integrity, not authentication (and how a
    /// [`CredentialRegistry`] upgrades it).
    pub app: AppId,
    /// Codecs the client accepts, in preference order.
    pub codecs: Vec<WireCodec>,
}

impl ClientHello {
    /// A v1 hello for `app` with the given codec preference — what a
    /// legacy client on the original protocol sends.
    pub fn new(app: AppId, codecs: Vec<WireCodec>) -> Self {
        Self {
            version: PROTOCOL_V1,
            app,
            codecs,
        }
    }
}

/// The v2 hello: advertises every version the client speaks (the server
/// picks the highest shared one), and optionally carries the per-app
/// credential token a hardened server requires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientHelloV2 {
    /// Every protocol version the client speaks. The server answers
    /// with the highest version both sides share.
    pub versions: Vec<u16>,
    /// The tenant this connection acts for (pinned, as in v1 — but a
    /// credentialed server verifies the claim before serving).
    pub app: AppId,
    /// Codecs the client accepts, in preference order.
    pub codecs: Vec<WireCodec>,
    /// Per-app credential token, when the server demands one. Verified
    /// constant-time against the server's [`CredentialRegistry`] before
    /// any batch is dispatched.
    pub credential: Option<String>,
}

impl ClientHelloV2 {
    /// A hello advertising every version this build speaks.
    pub fn new(app: AppId, codecs: Vec<WireCodec>, credential: Option<String>) -> Self {
        Self {
            versions: SUPPORTED_VERSIONS.to_vec(),
            app,
            codecs,
            credential,
        }
    }
}

/// Second frame of a connection, server → client (always JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerHello {
    /// The connection is open; all further frames use `codec` and the
    /// wire speaks `version` (the highest version both sides share).
    Accept {
        /// The negotiated protocol version for this connection.
        version: u16,
        /// The negotiated codec.
        codec: WireCodec,
    },
    /// The connection is refused; the server closes after this frame.
    Reject {
        /// Why the hello was not acceptable.
        reason: String,
    },
}

// ----------------------------------------------------------------------
// Credentials
// ----------------------------------------------------------------------

/// Constant-time byte-string equality: the comparison cost depends only
/// on the *lengths*, never on where the first mismatch sits, so a remote
/// peer cannot binary-search a token byte by byte from timing.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// The server-side table of per-app credential tokens.
///
/// Installed with [`EcovisorServer::with_credentials`]; once present,
/// every connection must prove its claimed [`AppId`] with the matching
/// token in a [`ClientHelloV2`] **before any batch is served** —
/// rejections happen at hello time, so an unauthenticated peer never
/// reaches the dispatcher. Token comparison is constant-time.
#[derive(Debug, Clone, Default)]
pub struct CredentialRegistry {
    tokens: BTreeMap<AppId, Vec<u8>>,
}

impl CredentialRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) an app's credential token.
    pub fn insert(&mut self, app: AppId, token: impl Into<Vec<u8>>) {
        self.tokens.insert(app, token.into());
    }

    /// Builder-style [`insert`](Self::insert).
    #[must_use]
    pub fn with(mut self, app: AppId, token: impl Into<Vec<u8>>) -> Self {
        self.insert(app, token);
        self
    }

    /// Verifies a presented token against `app`'s registered one in
    /// constant time. A missing registration, a missing presentation,
    /// and a wrong token are all plain `false` — the caller's rejection
    /// message never distinguishes them.
    pub fn verify(&self, app: AppId, presented: Option<&str>) -> bool {
        // Compare against an empty token when either side is absent so
        // the call always performs a comparison.
        let stored: &[u8] = self.tokens.get(&app).map(Vec::as_slice).unwrap_or(&[]);
        let given: &[u8] = presented.map(str::as_bytes).unwrap_or(&[]);
        let shape_ok = self.tokens.contains_key(&app) && presented.is_some();
        constant_time_eq(stored, given) && shape_ok
    }
}

// ----------------------------------------------------------------------
// Framing
// ----------------------------------------------------------------------

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame into `buf`, growing (never shrinking)
/// it as needed — the payload occupies `buf[..len]`. Reusing one buffer
/// across frames is the blocking read path's allocation-reuse story; the
/// evented server's [`evented`] state machine has its own per-connection
/// accumulation buffer. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
fn read_frame_into(stream: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<usize>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME_LEN"),
        ));
    }
    let len = len as usize;
    if buf.len() < len {
        buf.resize(len, 0);
    }
    stream.read_exact(&mut buf[..len])?;
    Ok(Some(len))
}

/// [`read_frame_into`] with a fresh allocation per frame — the
/// convenience form for one-shot reads (handshakes, tests).
fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::new();
    Ok(read_frame_into(stream, &mut buf)?.map(|len| {
        buf.truncate(len);
        buf
    }))
}

// ----------------------------------------------------------------------
// Server
// ----------------------------------------------------------------------

/// An ecovisor shared between the transport threads and the driver loop:
/// per-app shards dispatch in parallel, settlement quiesces them (see
/// [`ShardedEcovisor`]).
pub type SharedEcovisor = Arc<ShardedEcovisor>;

/// The writer half of one served connection: the connection's stream
/// behind a mutex, shared by the response path (serving thread) and the
/// post-settlement broadcast (driver thread), so the two interleave at
/// frame granularity. On the evented path this is the *same* socket the
/// reactor reads from (one fd per connection — at thousands of tenants
/// a `try_clone` per connection would double the process's fd bill);
/// the blocking path hands in a cloned stream because its reader half
/// needs `&mut` access.
struct ConnShared {
    app: AppId,
    codec: WireCodec,
    writer: Mutex<Arc<TcpStream>>,
    /// `Some(filter)` once the connection subscribed to event push.
    filter: Mutex<Option<EventFilter>>,
    /// Backpressure state: what could not be written because the peer
    /// stopped draining its socket. Lock order is `pending` before
    /// `writer`, on every path.
    pending: Mutex<PendingWrites>,
    /// `Some` on evented connections: how the reactor learns this
    /// connection still owes bytes, so it arms writable interest and
    /// finishes the flush when the peer drains. `None` on blocking
    /// connections, which retry on their own serving paths.
    notify: Option<WriteNotify>,
    /// The server's observability hub, for outbound frame/byte counting
    /// and coalesce-drop accounting (`None` when the server has none).
    obs: Option<Arc<crate::obs::ObsHub>>,
}

impl ConnShared {
    /// The transport-metrics handles, when a hub is attached.
    fn metrics(&self) -> Option<&crate::obs::TransportMetrics> {
        self.obs.as_deref().map(|hub| &hub.transport)
    }
}

/// The reactor-facing side of a connection's write queue: marks the
/// connection dirty and wakes the event loop (see [`evented`]).
struct WriteNotify {
    token: usize,
    dirty: Arc<Mutex<Vec<usize>>>,
    waker: reactor::Waker,
}

impl WriteNotify {
    fn notify(&self) {
        let mut dirty = crate::lock::lock(&self.dirty);
        if !dirty.contains(&self.token) {
            dirty.push(self.token);
        }
        drop(dirty);
        let _ = self.waker.wake();
    }
}

/// One connection's write backlog. A slow subscriber no longer gets its
/// socket shut down: writes that would block are *queued* here and
/// retried on every settlement (and on every response write), so a hung
/// subscriber that recovers picks up where it left off.
///
/// Two tiers, because a length-prefixed frame that has started going out
/// must finish byte-exact:
///
/// * `buf` holds frames **committed** to the wire order as encoded
///   bytes — one grow-only buffer reused across every frame on the
///   connection (no per-frame allocation); the prefix up to `written`
///   is already on the wire, a partially-written frame resumes
///   byte-exact, and committed frames are never reordered, coalesced,
///   or dropped (responses and control frames always land here);
/// * `parked` holds event notifications **displaced** by backpressure,
///   governed by the app's [`OutboxPolicy`] — exactly the per-app outbox
///   discipline, applied a second time at the connection: level events
///   coalesce keep-latest / evict-oldest at the cap, edge events
///   (battery full/empty, budget exhaustion) are never dropped. Once the
///   socket drains, the parked set is re-framed as a single recovery
///   [`EventFrame`] stamped with the newest contributing tick.
#[derive(Default)]
struct PendingWrites {
    /// Committed wire bytes, length prefixes included; `buf[written..]`
    /// awaits the socket.
    buf: Vec<u8>,
    /// Bytes of `buf` already on the wire.
    written: usize,
    /// Whole frames currently committed-but-unwritten (the
    /// [`ServerHandle::subscriber_backlog`] diagnostic).
    queued_frames: usize,
    /// Notifications parked under the app's [`OutboxPolicy`].
    parked: Vec<Notification>,
    /// Settlement tick of the newest parked notification.
    parked_tick: u64,
}

/// Capacity retained by a drained write buffer: bursts briefly grow the
/// buffer, steady state keeps a bounded allocation per connection.
const DRAIN_RETAIN_BYTES: usize = 64 * 1024;

impl PendingWrites {
    /// Committed-but-unwritten byte count.
    fn queued_bytes(&self) -> usize {
        self.buf.len() - self.written
    }

    /// Appends one length-prefixed frame to the committed tail. The
    /// already-written prefix is compacted away first, so the buffer
    /// never grows past the backlog bound even on a connection that
    /// drains slowly forever.
    fn commit(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_LEN)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        if self.written > 0 {
            self.buf.drain(..self.written);
            self.written = 0;
        }
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.queued_frames += 1;
        Ok(())
    }

    /// Resets after a full drain, keeping (a bounded amount of) the
    /// allocation for the next frame.
    fn drained(&mut self) {
        self.buf.clear();
        self.written = 0;
        self.queued_frames = 0;
        if self.buf.capacity() > DRAIN_RETAIN_BYTES {
            self.buf.shrink_to(DRAIN_RETAIN_BYTES);
        }
    }

    /// `true` while committed bytes or parked notifications await the
    /// socket.
    fn has_backlog(&self) -> bool {
        self.queued_bytes() > 0 || !self.parked.is_empty()
    }
}

/// Classifies a socket write failure: backpressure (the peer is slow —
/// keep the connection, queue the bytes) versus fatal (the peer is gone).
fn is_backpressure(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Length-prefixes a payload into the exact bytes [`write_frame`] would
/// put on the wire — the queued form, resumable mid-write.
fn wire_bytes(payload: &[u8]) -> io::Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Writes as much of the committed buffer as the socket accepts.
/// `Ok(true)` means fully drained; `Ok(false)` means backpressure (the
/// partially-written tail resumes later); `Err` means the socket is dead.
fn write_committed(mut writer: &TcpStream, pending: &mut PendingWrites) -> io::Result<bool> {
    while pending.written < pending.buf.len() {
        match writer.write(&pending.buf[pending.written..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "peer closed"));
            }
            Ok(n) => pending.written += n,
            Err(e) if is_backpressure(&e) => return Ok(false),
            Err(e) => return Err(e),
        }
    }
    pending.drained();
    Ok(true)
}

impl ConnShared {
    /// Drains the backlog: committed frames first, then the parked
    /// notifications re-framed as one recovery [`EventFrame`].
    /// `Ok(false)` = backpressure, everything unsent stays queued.
    fn flush(&self, pending: &mut PendingWrites) -> io::Result<bool> {
        let writer = crate::lock::lock(&self.writer);
        if !write_committed(&writer, pending)? {
            return Ok(false);
        }
        if pending.parked.is_empty() {
            return Ok(true);
        }
        let frame = EventFrame {
            version: PROTOCOL_VERSION,
            app: self.app,
            tick: pending.parked_tick,
            events: std::mem::take(&mut pending.parked),
        };
        let payload = self.codec.encode(&Frame::Event(frame));
        pending.commit(&payload)?;
        if let Some(m) = self.metrics() {
            m.frames_out.inc();
            m.bytes_out.add(payload.len() as u64 + 4);
        }
        write_committed(&writer, pending)
    }

    /// Hands any remaining backlog to the reactor (evented connections
    /// only): the event loop arms writable interest and finishes the
    /// flush once the peer drains. Call with the `pending` lock held so
    /// the backlog check and the hand-off are one atomic step.
    fn nudge_reactor(&self, pending: &PendingWrites) {
        if pending.has_backlog() {
            if let Some(notify) = &self.notify {
                notify.notify();
            }
        }
    }

    /// The reactor's writable-readiness flush: `Ok(true)` = fully
    /// drained (writable interest can be disarmed), `Ok(false)` = still
    /// backlogged, `Err` = the socket is dead and the connection should
    /// close.
    fn flush_for_reactor(&self) -> io::Result<bool> {
        let mut pending = crate::lock::lock(&self.pending);
        if !pending.has_backlog() {
            return Ok(true);
        }
        self.flush(&mut pending)?;
        Ok(!pending.has_backlog())
    }

    /// Delivers one event frame, queueing under `policy` when the socket
    /// is full instead of disconnecting the subscriber. Fatal errors
    /// shut the socket down so the reader half observes the failure,
    /// exits, and deregisters.
    fn push_event(&self, frame: EventFrame, policy: OutboxPolicy) {
        let mut pending = crate::lock::lock(&self.pending);
        let result = (|| -> io::Result<()> {
            if pending.queued_bytes() > MAX_PENDING_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::OutOfMemory,
                    "write backlog overflow",
                ));
            }
            if self.flush(&mut pending)? {
                // Backlog clear: commit this frame to the wire order.
                let payload = self.codec.encode(&Frame::Event(frame));
                pending.commit(&payload)?;
                if let Some(m) = self.metrics() {
                    m.frames_out.inc();
                    m.bytes_out.add(payload.len() as u64 + 4);
                }
                self.flush(&mut pending)?;
            } else {
                // Socket still full: park the notifications under the
                // app's outbox policy rather than queueing unbounded
                // bytes — edges all survive, levels coalesce.
                pending.parked_tick = frame.tick;
                let offered = frame.events.len() + pending.parked.len();
                for event in frame.events {
                    policy.push(&mut pending.parked, event);
                }
                // Whatever the outbox policy coalesced or evicted at
                // the cap is a drop worth counting.
                let dropped = offered.saturating_sub(pending.parked.len());
                if dropped > 0 {
                    if let Some(m) = self.metrics() {
                        m.coalesce_drops.add(dropped as u64);
                    }
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => self.nudge_reactor(&pending),
            Err(_) => {
                let _ = crate::lock::lock(&self.writer).shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Retries the backlog without new traffic — the per-settlement
    /// recovery path for a subscriber that drained its socket again.
    fn retry_backlog(&self) {
        let mut pending = crate::lock::lock(&self.pending);
        if !pending.has_backlog() {
            return;
        }
        match self.flush(&mut pending) {
            Ok(_) => self.nudge_reactor(&pending),
            Err(_) => {
                let _ = crate::lock::lock(&self.writer).shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// Writes a response/control payload through the connection's backlog
/// queue, so it can never interleave into a partially-written push frame.
/// Under backpressure the payload stays committed in order and goes out
/// on a later flush (the peer necessarily reads before it can await this
/// response); the error return is reserved for a dead socket or an
/// overflowing backlog, both of which end the serving loop.
fn write_conn(conn: &ConnShared, payload: &[u8]) -> io::Result<()> {
    let mut pending = crate::lock::lock(&conn.pending);
    if pending.queued_bytes().saturating_add(payload.len()) > MAX_PENDING_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::OutOfMemory,
            "write backlog overflow: peer sends but never drains",
        ));
    }
    pending.commit(payload)?;
    if let Some(m) = conn.metrics() {
        m.frames_out.inc();
        m.bytes_out.add(payload.len() as u64 + 4);
    }
    conn.flush(&mut pending)?;
    conn.nudge_reactor(&pending);
    Ok(())
}

/// Everything a serving thread needs beyond its own socket.
struct ServeCtx {
    shared: SharedEcovisor,
    /// The credential table, behind a mutex so an operator can rotate
    /// tokens on a live server ([`ServerHandle::rotate_credential`]).
    /// Credentials gate the *hello* only: rotation affects the next
    /// handshake, never a connection that already authenticated.
    creds: Mutex<Option<CredentialRegistry>>,
    read_timeout: Option<Duration>,
    /// Writer halves of live v2 connections, walked by the broadcast
    /// hook. Entries deregister themselves when their serving thread
    /// exits (or when a push write fails).
    registry: Arc<Mutex<Vec<Arc<ConnShared>>>>,
    /// The observability hub attached to the served ecovisor (`None`
    /// only when the `obs` feature is off). The transport layer records
    /// wall-clock series into it directly; the wire `Stats` request
    /// dumps it.
    obs: Option<Arc<crate::obs::ObsHub>>,
    /// Connections currently in any serving phase (maintained by the
    /// reactor; see [`ServerHandle::active_connections`]).
    active: Arc<AtomicUsize>,
    /// Summed receive-buffer capacity across live connections
    /// (maintained by the reactor; see
    /// [`ServerHandle::recv_buffer_bytes`]).
    recv_bytes: Arc<AtomicUsize>,
}

/// Removes a connection from the push registry when its serving thread
/// exits — on every path, panics included.
struct Deregister {
    registry: Arc<Mutex<Vec<Arc<ConnShared>>>>,
    conn: Arc<ConnShared>,
}

impl Drop for Deregister {
    fn drop(&mut self) {
        crate::lock::lock(&self.registry).retain(|c| !Arc::ptr_eq(c, &self.conn));
    }
}

/// Drains subscribed apps' outboxes and pushes the resulting
/// [`EventFrame`]s to every subscribed connection. Runs inside the
/// settlement barrier (see [`ShardedEcovisor::on_settlement`]), so the
/// pushed sequence is exactly the per-settlement event sequence.
///
/// A subscriber whose socket is full is **not** disconnected: its frame
/// is queued/parked per [`PendingWrites`], and every settlement retries
/// the backlog, so a hung subscriber that starts draining again catches
/// up (edge events intact, level events coalesced keep-latest under the
/// app's [`OutboxPolicy`]).
fn broadcast_events(eco: &Ecovisor, registry: &Mutex<Vec<Arc<ConnShared>>>) {
    // Snapshot the registry, then group subscribers by app: the app's
    // outbox is drained once and every subscriber gets its own filtered
    // copy of the same frame.
    let snapshot: Vec<Arc<ConnShared>> = crate::lock::lock(registry).clone();
    let mut by_app: BTreeMap<AppId, Vec<(Arc<ConnShared>, EventFilter)>> = BTreeMap::new();
    for conn in snapshot {
        let filter = *crate::lock::lock(&conn.filter);
        if let Some(filter) = filter {
            by_app.entry(conn.app).or_default().push((conn, filter));
        }
    }
    for (app, subscribers) in by_app {
        let policy = eco.outbox_policy(app).unwrap_or_default();
        // Drain only what some subscriber actually wants: events outside
        // the union of filters stay pending for polling/draining.
        let union = subscribers
            .iter()
            .fold(EventFilter::none(), |acc, (_, f)| acc.union(f));
        let frame = eco.take_event_frame_matching(app, &union);
        for (conn, filter) in subscribers {
            let filtered = frame.as_ref().map(|f| f.filtered(&filter));
            match filtered {
                Some(filtered) if !filtered.events.is_empty() => {
                    conn.push_event(filtered, policy);
                }
                // Nothing new for this subscriber — still a chance to
                // drain whatever backpressure left behind.
                _ => conn.retry_backlog(),
            }
        }
    }
}

/// A TCP server answering protocol batches against one shared ecovisor
/// and pushing event frames to subscribed v2 connections.
///
/// Bind, optionally harden with
/// [`with_credentials`](Self::with_credentials) /
/// [`with_read_timeout`](Self::with_read_timeout), then either
/// [`spawn`](Self::spawn) the accept loop onto a background thread
/// (keeping a [`ServerHandle`] for the driver side) or embed
/// [`serve_connection`](Self::serve_connection) in a custom accept loop.
pub struct EcovisorServer {
    listener: TcpListener,
    ctx: Arc<ServeCtx>,
    /// Worker-pool size for [`spawn`](Self::spawn); `0` means
    /// auto-size from the host's available parallelism.
    workers: usize,
}

impl std::fmt::Debug for EcovisorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcovisorServer")
            .field("addr", &self.listener.local_addr().ok())
            .field(
                "credentialed",
                &crate::lock::lock(&self.ctx.creds).is_some(),
            )
            .field("read_timeout", &self.ctx.read_timeout)
            .finish_non_exhaustive()
    }
}

impl EcovisorServer {
    /// Binds a listener, takes ownership of the ecovisor, and registers
    /// the post-settlement broadcast hook that fans event frames out to
    /// subscribed connections. Use port 0 for an ephemeral port (tests).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, mut eco: Ecovisor) -> io::Result<Self> {
        // A live server always carries an observability hub (unless the
        // `obs` feature compiled the attach away): dispatch and
        // settlement record into it, the transport counts frames into
        // it, and the wire `Stats` request reads it back out.
        if eco.obs_hub().is_none() {
            eco.attach_obs(crate::obs::ObsHub::new());
        }
        let obs = eco.obs_hub();
        let shared = Arc::new(ShardedEcovisor::new(eco));
        let registry: Arc<Mutex<Vec<Arc<ConnShared>>>> = Arc::new(Mutex::new(Vec::new()));
        let hook_registry = Arc::clone(&registry);
        shared.on_settlement(move |eco| broadcast_events(eco, &hook_registry));
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            ctx: Arc::new(ServeCtx {
                shared,
                creds: Mutex::new(None),
                read_timeout: None,
                registry,
                obs,
                active: Arc::new(AtomicUsize::new(0)),
                recv_bytes: Arc::new(AtomicUsize::new(0)),
            }),
            workers: 0,
        })
    }

    /// Sets the worker-pool size used by [`spawn`](Self::spawn). The
    /// default (`0`) auto-sizes from the host's available parallelism,
    /// clamped to `2..=8` — the pool multiplexes every connection, so it
    /// never needs to scale with client count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Requires every connection to authenticate its claimed [`AppId`]
    /// with the matching token from `creds` (v2 hello, verified
    /// constant-time, rejected before any batch is served). v1 hellos
    /// carry no credential and are rejected while a registry is
    /// installed.
    ///
    /// Tokens can be rotated later on a live server with
    /// [`ServerHandle::rotate_credential`]; the gate applies at hello
    /// time only, so established connections are unaffected.
    #[must_use]
    pub fn with_credentials(self, creds: CredentialRegistry) -> Self {
        *crate::lock::lock(&self.ctx.creds) = Some(creds);
        self
    }

    /// Arms a per-connection read/idle timeout: a connection that sends
    /// nothing for `timeout` — including a dead subscriber holding a
    /// push stream — is treated as failed, logged, and reaped. The same
    /// bound applies to writes, so a peer that stops draining its socket
    /// cannot wedge the broadcast path.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        Arc::get_mut(&mut self.ctx)
            .expect("server context not yet shared")
            .read_timeout = Some(timeout);
        self
    }

    /// The bound address (reports the ephemeral port after a `:0` bind).
    ///
    /// # Errors
    ///
    /// Propagates the lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared ecovisor, for the driver loop that ticks settlement.
    pub fn ecovisor(&self) -> SharedEcovisor {
        Arc::clone(&self.ctx.shared)
    }

    /// Serves one accepted connection to completion on the calling
    /// thread: hello handshake (version + codec negotiation, credential
    /// check), then the version-matched frame loop until the peer
    /// disconnects. For embedding in a custom accept loop;
    /// [`spawn`](Self::spawn) does this on one thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; protocol-level problems (bad hello,
    /// undecodable batch) are answered on the wire and end the
    /// connection cleanly.
    pub fn serve_connection(&self, stream: TcpStream) -> io::Result<()> {
        serve_connection(stream, &self.ctx)
    }

    /// Moves serving onto the evented runtime: one reactor thread drives
    /// non-blocking accept/read/write for every connection; decoded
    /// frames are dispatched on a small worker pool (see
    /// [`with_workers`](Self::with_workers)). Wire behavior is identical
    /// to [`serve_connection`](Self::serve_connection) — v1 and v2
    /// clients cannot tell the transports apart.
    ///
    /// # Errors
    ///
    /// Propagates address-lookup and reactor-setup failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        evented::spawn_evented(self.listener, self.ctx, self.workers)
    }
}

/// Serves one connection: handshake, then the version-matched loop.
fn serve_connection(mut stream: TcpStream, ctx: &ServeCtx) -> io::Result<()> {
    let result = serve_frames(&mut stream, ctx);
    // Shut the socket down explicitly: the spawn path keeps a cloned
    // fd in the shutdown registry, and shutdown(2) (unlike dropping
    // this handle) closes the connection for every clone, so the
    // peer sees EOF as soon as serving ends.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    result
}

/// The hello, parsed version-agnostically.
enum ParsedHello {
    V2(ClientHelloV2),
    V1(ClientHello),
}

/// Negotiation outcome for one connection.
#[derive(Clone, Copy)]
struct Negotiated {
    version: u16,
    codec: WireCodec,
    app: AppId,
}

/// The verdict on a hello frame, with the (always-JSON) reply payload to
/// put on the wire. Transport-agnostic: the blocking and evented servers
/// both feed the first inbound frame here, so negotiation semantics
/// cannot drift between them.
enum HelloOutcome {
    /// Send `reply` (an accept), then serve under the negotiation.
    Accept(Negotiated, Vec<u8>),
    /// Send `reply` (a reject), then close.
    Reject(Vec<u8>),
}

/// Evaluates a hello frame's bytes: version intersection, credential
/// gate, codec pick.
fn evaluate_hello(ctx: &ServeCtx, hello_bytes: &[u8]) -> HelloOutcome {
    let reject = |reason: String| {
        HelloOutcome::Reject(WireCodec::Json.encode(&ServerHello::Reject { reason }))
    };

    // The v2 hello is tried first (its `versions` field is absent from
    // v1 hellos, so the two shapes never ambiguate).
    let hello = match WireCodec::Json.decode::<ClientHelloV2>(hello_bytes) {
        Ok(h) => ParsedHello::V2(h),
        Err(_) => match WireCodec::Json.decode::<ClientHello>(hello_bytes) {
            Ok(h) => ParsedHello::V1(h),
            Err(e) => return reject(format!("malformed hello: {e}")),
        },
    };

    let (versions, app, codecs, credential) = match &hello {
        ParsedHello::V2(h) => (
            h.versions.clone(),
            h.app,
            h.codecs.clone(),
            h.credential.as_deref(),
        ),
        ParsedHello::V1(h) => (vec![h.version], h.app, h.codecs.clone(), None),
    };

    // Highest shared version. A v1 hello's single version must itself be
    // supported; rejecting here keeps mismatched clients away from the
    // dispatcher entirely.
    let Some(version) = versions
        .iter()
        .filter(|v| SUPPORTED_VERSIONS.contains(v))
        .max()
        .copied()
    else {
        return reject(format!(
            "protocol version mismatch: server speaks {SUPPORTED_VERSIONS:?}, client offered {versions:?}"
        ));
    };

    // Credential gate: when the server carries a registry, the hello
    // must prove its claimed app before anything else is served. The
    // reason string deliberately does not say *what* failed.
    if let Some(creds) = &*crate::lock::lock(&ctx.creds) {
        if !creds.verify(app, credential) {
            return reject(format!("credential rejected for {app}"));
        }
    }

    let Some(codec) = codecs
        .iter()
        .find(|c| WireCodec::preferred().contains(c))
        .copied()
    else {
        return reject("no common codec".into());
    };

    let accept = ServerHello::Accept { version, codec };
    HelloOutcome::Accept(
        Negotiated {
            version,
            codec,
            app,
        },
        WireCodec::Json.encode(&accept),
    )
}

/// Runs the blocking hello exchange. `Ok(None)` means the hello was
/// answered with a reject (or the peer closed) and the connection is
/// done.
fn negotiate(stream: &mut TcpStream, ctx: &ServeCtx) -> io::Result<Option<Negotiated>> {
    let Some(hello_bytes) = read_frame(stream)? else {
        return Ok(None);
    };
    match evaluate_hello(ctx, &hello_bytes) {
        HelloOutcome::Accept(neg, reply) => {
            write_frame(stream, &reply)?;
            Ok(Some(neg))
        }
        HelloOutcome::Reject(reply) => {
            write_frame(stream, &reply)?;
            Ok(None)
        }
    }
}

/// Maps an admin-surface refusal to the closest I/O error kind.
fn admin_error_kind(e: &ProtoError) -> io::ErrorKind {
    match e {
        ProtoError::Denied(_) => io::ErrorKind::PermissionDenied,
        _ => io::ErrorKind::InvalidData,
    }
}

/// One pinned-scope denial batch (the spoofed-envelope answer).
fn pinned_denial(batch: &RequestBatch, pinned: AppId) -> ResponseBatch {
    ResponseBatch {
        version: batch.version,
        app: batch.app,
        responses: vec![
            EnergyResponse::Err(ProtoError::Other(format!(
                "connection is pinned to {pinned}, batch claims {}",
                batch.app
            )));
            batch.requests.len()
        ],
    }
}

fn serve_frames(stream: &mut TcpStream, ctx: &ServeCtx) -> io::Result<()> {
    // The read/idle timeout applies from the hello on; the write bound
    // protects the broadcast path (options live on the underlying
    // socket, so the cloned writer half inherits them).
    stream.set_read_timeout(ctx.read_timeout)?;
    stream.set_write_timeout(ctx.read_timeout)?;
    let Some(neg) = negotiate(stream, ctx)? else {
        return Ok(());
    };
    if neg.version >= PROTOCOL_VERSION {
        serve_v2(stream, ctx, &neg)
    } else {
        serve_v1(stream, ctx, &neg)
    }
}

/// What a serving loop (blocking thread or evented worker) does with the
/// outcome of one processed inbound payload.
enum Served {
    /// Write this encoded payload back to the peer.
    Reply(Vec<u8>),
    /// Nothing to send (e.g. an inbound `Pong`).
    Quiet,
    /// Protocol violation: close the connection without replying.
    Close,
}

/// Processes one v1 payload — a bare `RequestBatch` answered by a bare
/// `ResponseBatch`, byte-identical to the original request/response-only
/// server, so a v1-only client round-trips unmodified. (`PollEvents`
/// flows through like any other request, which is how v1 clients get
/// Table 2 event parity.) Shared verbatim by the blocking loop and the
/// evented workers: the two transports cannot diverge.
fn process_v1_payload(ctx: &ServeCtx, neg: &Negotiated, payload: &[u8]) -> Served {
    let response = match neg.codec.decode::<RequestBatch>(payload) {
        // Scope pinning: a remote peer is untrusted, so a batch
        // claiming a different app than the hello pinned is a
        // spoof attempt — denied as a value, per request.
        Ok(batch) if batch.app != neg.app => pinned_denial(&batch, neg.app),
        // Sharded dispatch: no global lock — the processing thread
        // contends only with traffic to the same app's shard (and with
        // the driver's settlement barrier).
        Ok(batch) => ctx.shared.dispatch_batch(&batch),
        // An undecodable frame means framing may be out of sync;
        // the server cannot know how many requests the batch held,
        // so any reply would break the one-response-per-request
        // contract. Close instead — the client surfaces the dropped
        // connection as transport-failure values with the right
        // arity.
        Err(_) => return Served::Close,
    };
    Served::Reply(neg.codec.encode(&response))
}

/// Processes one v2 payload — a [`Frame`]. Subscriptions and the admin
/// checkpoint surface are interpreted per-connection here; `conn` is the
/// connection's writer half (its filter is flipped by
/// `SubscribeEvents`), `admin` its checkpoint state. Shared verbatim by
/// the blocking loop and the evented workers.
fn process_v2_payload(
    ctx: &ServeCtx,
    neg: &Negotiated,
    conn: &ConnShared,
    admin: &mut AdminState,
    payload: &[u8],
) -> Served {
    // Admin gate: with a credential registry installed, the hello only
    // admits connections that proved their token, so every served v2
    // connection on a hardened server is credential-authenticated.
    // Without a registry nothing on the wire is authenticated, and the
    // checkpoint surface stays closed rather than trusting the network.
    let authed = crate::lock::lock(&ctx.creds).is_some();
    match neg.codec.decode::<Frame>(payload) {
        Ok(Frame::Request(batch)) => {
            let response = if batch.app != neg.app {
                pinned_denial(&batch, neg.app)
            } else {
                // Connection-level interpretation of subscriptions:
                // the dispatcher acknowledges `SubscribeEvents`, the
                // transport gives it meaning for *this* connection —
                // under exactly the dispatcher's version gate
                // (supported envelope AND new enough for the
                // request), so the two never disagree about whether
                // a subscription took effect.
                for req in &batch.requests {
                    if let EnergyRequest::SubscribeEvents { filter } = req {
                        if SUPPORTED_VERSIONS.contains(&batch.version)
                            && batch.version >= req.min_version()
                        {
                            *crate::lock::lock(&conn.filter) = Some(*filter);
                        }
                    }
                }
                let mut response = ctx.shared.dispatch_batch(&batch);
                // Admin checkpoint surface, same shape as
                // subscriptions: the dispatcher acked
                // `Snapshot`/`Restore` (so recorded traces replay
                // arity-correct); the transport substitutes the real
                // per-connection answer, under the same version gate.
                for (req, resp) in batch.requests.iter().zip(response.responses.iter_mut()) {
                    if req.is_admin()
                        && SUPPORTED_VERSIONS.contains(&batch.version)
                        && batch.version >= req.min_version()
                    {
                        *resp = serve_admin(req, ctx, authed, admin);
                    }
                }
                response
            };
            Served::Reply(neg.codec.encode(&Frame::Response(response)))
        }
        Ok(Frame::Control(ControlFrame::Ping)) => {
            Served::Reply(neg.codec.encode(&Frame::Control(ControlFrame::Pong)))
        }
        Ok(Frame::Control(ControlFrame::Pong)) => Served::Quiet,
        // Response/Event are server-direction frames; a client
        // sending one is out of protocol. Same rule as an
        // undecodable frame: close, never guess.
        Ok(Frame::Response(_)) | Ok(Frame::Event(_)) | Err(_) => Served::Close,
    }
}

/// The blocking v1 loop ([`EcovisorServer::serve_connection`] embeds).
fn serve_v1(stream: &mut TcpStream, ctx: &ServeCtx, neg: &Negotiated) -> io::Result<()> {
    let mut buf = Vec::new();
    while let Some(len) = read_frame_into(stream, &mut buf)? {
        match process_v1_payload(ctx, neg, &buf[..len]) {
            Served::Reply(payload) => write_frame(stream, &payload)?,
            Served::Quiet => {}
            Served::Close => break,
        }
    }
    Ok(())
}

/// The blocking v2 loop: every payload is a [`Frame`]. The connection is
/// split — this function keeps the reader half; the writer half (a
/// cloned stream) goes into the push registry so the broadcast hook can
/// push [`Frame::Event`]s between this thread's responses.
fn serve_v2(stream: &mut TcpStream, ctx: &ServeCtx, neg: &Negotiated) -> io::Result<()> {
    let writer = Arc::new(stream.try_clone()?);
    let conn = Arc::new(ConnShared {
        app: neg.app,
        codec: neg.codec,
        writer: Mutex::new(writer),
        filter: Mutex::new(None),
        pending: Mutex::new(PendingWrites::default()),
        notify: None,
        obs: ctx.obs.clone(),
    });
    crate::lock::lock(&ctx.registry).push(Arc::clone(&conn));
    let _deregister = Deregister {
        registry: Arc::clone(&ctx.registry),
        conn: Arc::clone(&conn),
    };

    let mut admin = AdminState::default();
    let mut buf = Vec::new();
    while let Some(len) = read_frame_into(stream, &mut buf)? {
        match process_v2_payload(ctx, neg, &conn, &mut admin, &buf[..len]) {
            Served::Reply(payload) => write_conn(&conn, &payload)?,
            Served::Quiet => {}
            Served::Close => break,
        }
    }
    Ok(())
}

/// Per-connection state of the admin checkpoint surface: the cached
/// snapshot encoding chunks are paged out of, and the in-progress
/// restore assembly.
#[derive(Default)]
struct AdminState {
    /// Binary snapshot encoding captured by the last `Snapshot{chunk: 0}`
    /// on this connection. Chunks > 0 page out of this cache, so a
    /// multi-chunk download is a consistent point-in-time image even
    /// while the ecovisor keeps settling.
    snapshot: Option<Vec<u8>>,
    /// Restore chunks received so far.
    restore: Vec<u8>,
    /// Next expected restore chunk index.
    restore_next: u32,
    /// Binary tenant capture cached by the last `MigrateOut{chunk: 0}`
    /// on this connection (the tenant itself keeps running on this node
    /// until `MigrateCommit`).
    migrate_out: Option<Vec<u8>>,
    /// Migrate-in chunks received so far.
    migrate_in: Vec<u8>,
    /// Next expected migrate-in chunk index.
    migrate_in_next: u32,
}

/// Number of [`SNAPSHOT_CHUNK_LEN`] chunks covering `len` bytes (at
/// least one, so even an empty payload answers a chunk).
fn chunk_count(len: usize) -> u32 {
    u32::try_from(len.div_ceil(SNAPSHOT_CHUNK_LEN).max(1)).unwrap_or(u32::MAX)
}

/// Executes one admin request for a connection. Runs on the serving
/// thread with no ecovisor lock held; `Snapshot`/`Restore` take the
/// settlement barrier themselves through the shared handle, so a
/// checkpoint can never observe a half-settled tick. The pinned app does
/// not need to be a registered tenant — the admin surface is
/// connection-level, and its responses replace whatever the dispatcher
/// answered for these requests.
fn serve_admin(
    req: &EnergyRequest,
    ctx: &ServeCtx,
    authed: bool,
    admin: &mut AdminState,
) -> EnergyResponse {
    if !authed {
        return EnergyResponse::Err(ProtoError::Denied(
            "the admin surface (snapshot/restore/migration/federation) requires \
             a credential-authenticated connection"
                .into(),
        ));
    }
    match req {
        EnergyRequest::Snapshot { chunk } => {
            if *chunk == 0 {
                admin.snapshot = Some(ctx.shared.snapshot().to_bytes());
            }
            let Some(bytes) = admin.snapshot.as_deref() else {
                return EnergyResponse::Err(ProtoError::Other(
                    "no snapshot cached on this connection: request chunk 0 first".into(),
                ));
            };
            let total = chunk_count(bytes.len());
            if *chunk >= total {
                return EnergyResponse::Err(ProtoError::Other(format!(
                    "snapshot chunk {chunk} out of range ({total} chunks)"
                )));
            }
            let start = *chunk as usize * SNAPSHOT_CHUNK_LEN;
            let end = (start + SNAPSHOT_CHUNK_LEN).min(bytes.len());
            EnergyResponse::SnapshotChunk {
                index: *chunk,
                total,
                data: bytes[start..end].to_vec(),
            }
        }
        EnergyRequest::Restore { index, total, data } => {
            if *index == 0 {
                admin.restore.clear();
                admin.restore_next = 0;
            }
            if *total == 0 || *index >= *total || *index != admin.restore_next {
                let expected = admin.restore_next;
                admin.restore.clear();
                admin.restore_next = 0;
                return EnergyResponse::Err(ProtoError::Other(format!(
                    "restore chunk {index}/{total} out of order (expected {expected})"
                )));
            }
            if admin.restore.len().saturating_add(data.len()) > MAX_RESTORE_LEN {
                admin.restore.clear();
                admin.restore_next = 0;
                return EnergyResponse::Err(ProtoError::Other(
                    "restore payload exceeds the size ceiling".into(),
                ));
            }
            admin.restore.extend_from_slice(data);
            admin.restore_next += 1;
            if admin.restore_next < *total {
                return EnergyResponse::Ok;
            }
            let assembled = std::mem::take(&mut admin.restore);
            admin.restore_next = 0;
            match Snapshot::from_bytes(&assembled) {
                Ok(snap) => match ctx.shared.apply_snapshot(&snap) {
                    Ok(()) => EnergyResponse::Ok,
                    Err(e) => {
                        EnergyResponse::Err(ProtoError::Other(format!("restore rejected: {e}")))
                    }
                },
                Err(e) => EnergyResponse::Err(ProtoError::Other(format!(
                    "restore payload undecodable: {e}"
                ))),
            }
        }
        EnergyRequest::MigrateOut { app, chunk } => {
            if *chunk == 0 {
                match ctx.shared.extract_app(*app) {
                    Ok(snap) => admin.migrate_out = Some(snap.to_bytes()),
                    Err(e) => {
                        admin.migrate_out = None;
                        return EnergyResponse::Err(ProtoError::Other(format!(
                            "migrate-out rejected: {e}"
                        )));
                    }
                }
            }
            let Some(bytes) = admin.migrate_out.as_deref() else {
                return EnergyResponse::Err(ProtoError::Other(
                    "no tenant capture cached on this connection: request chunk 0 first".into(),
                ));
            };
            let total = chunk_count(bytes.len());
            if *chunk >= total {
                return EnergyResponse::Err(ProtoError::Other(format!(
                    "migrate-out chunk {chunk} out of range ({total} chunks)"
                )));
            }
            let start = *chunk as usize * SNAPSHOT_CHUNK_LEN;
            let end = (start + SNAPSHOT_CHUNK_LEN).min(bytes.len());
            EnergyResponse::SnapshotChunk {
                index: *chunk,
                total,
                data: bytes[start..end].to_vec(),
            }
        }
        EnergyRequest::MigrateIn { index, total, data } => {
            if *index == 0 {
                admin.migrate_in.clear();
                admin.migrate_in_next = 0;
            }
            if *total == 0 || *index >= *total || *index != admin.migrate_in_next {
                let expected = admin.migrate_in_next;
                admin.migrate_in.clear();
                admin.migrate_in_next = 0;
                return EnergyResponse::Err(ProtoError::Other(format!(
                    "migrate-in chunk {index}/{total} out of order (expected {expected})"
                )));
            }
            if admin.migrate_in.len().saturating_add(data.len()) > MAX_RESTORE_LEN {
                admin.migrate_in.clear();
                admin.migrate_in_next = 0;
                return EnergyResponse::Err(ProtoError::Other(
                    "migrate-in payload exceeds the size ceiling".into(),
                ));
            }
            admin.migrate_in.extend_from_slice(data);
            admin.migrate_in_next += 1;
            if admin.migrate_in_next < *total {
                return EnergyResponse::Ok;
            }
            let assembled = std::mem::take(&mut admin.migrate_in);
            admin.migrate_in_next = 0;
            match crate::federation::TenantSnapshot::from_bytes(&assembled) {
                Ok(snap) => match ctx.shared.graft_app(&snap) {
                    Ok(()) => EnergyResponse::Ok,
                    Err(e) => {
                        EnergyResponse::Err(ProtoError::Other(format!("migrate-in rejected: {e}")))
                    }
                },
                Err(e) => EnergyResponse::Err(ProtoError::Other(format!(
                    "migrate-in payload undecodable: {e}"
                ))),
            }
        }
        EnergyRequest::MigrateCommit { app } => match ctx.shared.remove_app(*app) {
            Ok(()) => EnergyResponse::Ok,
            Err(e) => {
                EnergyResponse::Err(ProtoError::Other(format!("migrate-commit rejected: {e}")))
            }
        },
        EnergyRequest::FedCollect => EnergyResponse::Demands(ctx.shared.fed_collect()),
        EnergyRequest::FedSettle { views } => match ctx.shared.fed_settle(views) {
            Ok(_) => EnergyResponse::Ok,
            Err(e) => EnergyResponse::Err(ProtoError::Other(format!("fed-settle rejected: {e}"))),
        },
        EnergyRequest::FedAlign { next_container } => {
            let aligned = ctx
                .shared
                .with(|eco| crate::lock::get_mut(&mut eco.cop).align_container_id(*next_container));
            match aligned {
                Ok(()) => EnergyResponse::Ok,
                Err(e) => {
                    EnergyResponse::Err(ProtoError::Other(format!("fed-align rejected: {e}")))
                }
            }
        }
        EnergyRequest::FedCursor => {
            let cursor = ctx
                .shared
                .read(|eco| crate::lock::read(&eco.cop).next_container_id());
            EnergyResponse::Count(cursor as usize)
        }
        EnergyRequest::Stats => EnergyResponse::Stats(stats_report(ctx)),
        _ => EnergyResponse::Err(ProtoError::Other("not an admin request".into())),
    }
}

/// Assembles the wire [`StatsReport`]: the [`ServerStats`] trio read
/// from the serving context plus a full dump of the observability
/// registry (empty when no hub is attached — the `obs` feature is off).
fn stats_report(ctx: &ServeCtx) -> crate::proto::StatsReport {
    let backlog: usize = crate::lock::lock(&ctx.registry)
        .iter()
        .map(|conn| {
            let pending = crate::lock::lock(&conn.pending);
            pending.queued_frames + pending.parked.len()
        })
        .sum();
    crate::proto::StatsReport {
        active_connections: ctx.active.load(Ordering::SeqCst) as u64,
        subscriber_backlog: backlog as u64,
        recv_buffer_bytes: ctx.recv_bytes.load(Ordering::SeqCst) as u64,
        metrics: ctx
            .obs
            .as_ref()
            .map(|hub| hub.snapshot())
            .unwrap_or_default(),
    }
}

/// A point-in-time snapshot of the serving runtime's resource counters.
///
/// Read it with [`ServerHandle::stats`]. This is the stable surface
/// leak detection gates on (`ecoharness fuzz --soak`): after every
/// client has disconnected and the reactor has reaped the
/// registrations, all three counters return to zero — a persistently
/// non-zero residue is a leak in the transport, not noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Connections currently registered with the reactor
    /// ([`ServerHandle::active_connections`]).
    pub active_connections: usize,
    /// Committed-but-unwritten frames plus parked notifications across
    /// all live connections ([`ServerHandle::subscriber_backlog`]).
    pub subscriber_backlog: usize,
    /// Bytes currently held in per-connection receive buffers
    /// ([`ServerHandle::recv_buffer_bytes`]).
    pub recv_buffer_bytes: usize,
}

/// Driver-side handle to a spawned server: the address clients connect
/// to, the shared ecovisor the driver ticks, and the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    stop: Arc<AtomicBool>,
    /// Wakes the reactor out of `poll` so it observes `stop` promptly.
    waker: reactor::Waker,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Arc<evented::JobQueue>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared ecovisor, for ticking settlement between batches.
    pub fn ecovisor(&self) -> SharedEcovisor {
        Arc::clone(&self.ctx.shared)
    }

    /// The server's observability hub ([`EcovisorServer::bind`] attaches
    /// one when the ecovisor arrives without), for metric inspection; the
    /// wire equivalent is the credential-gated `Stats` admin request.
    pub fn obs_hub(&self) -> Option<Arc<crate::obs::ObsHub>> {
        self.ctx.obs.clone()
    }

    /// Number of connections currently registered with the reactor. A
    /// client that disconnects (cleanly, mid-frame, or by tripping the
    /// idle timeout) drops off this count as soon as the reactor reaps
    /// its registration.
    pub fn active_connections(&self) -> usize {
        self.ctx.active.load(Ordering::SeqCst)
    }

    /// Backpressure diagnostic: committed-but-unwritten wire frames plus
    /// parked notifications, summed over every live v2 connection. Zero
    /// when all subscribers are draining; a persistently growing value
    /// points at a hung subscriber that is being queued for (see the
    /// backlog discussion in the module docs).
    pub fn subscriber_backlog(&self) -> usize {
        crate::lock::lock(&self.ctx.registry)
            .iter()
            .map(|conn| {
                let pending = crate::lock::lock(&conn.pending);
                pending.queued_frames + pending.parked.len()
            })
            .sum()
    }

    /// Bytes currently held in per-connection receive buffers (summed
    /// capacity, maintained by the reactor as buffers grow for large
    /// frames and trim back when drained). Returns to zero once every
    /// connection has been reaped — the [`ServerStats`] leak gate.
    pub fn recv_buffer_bytes(&self) -> usize {
        self.ctx.recv_bytes.load(Ordering::SeqCst)
    }

    /// One coherent-enough snapshot of the runtime's resource counters
    /// (each counter is read atomically; the trio is not a transaction).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            active_connections: self.active_connections(),
            subscriber_backlog: self.subscriber_backlog(),
            recv_buffer_bytes: self.recv_buffer_bytes(),
        }
    }

    /// Rotates (or adds) `app`'s credential token on the live server.
    /// Takes effect for the *next* hello: connections that already
    /// authenticated keep serving — exactly the semantics an operator
    /// wants when cycling tokens without a maintenance window. Returns
    /// `false` (and changes nothing) when the server was spawned
    /// without a credential registry: rotation must never be the thing
    /// that silently turns authentication on.
    pub fn rotate_credential(&self, app: AppId, token: impl Into<Vec<u8>>) -> bool {
        match crate::lock::lock(&self.ctx.creds).as_mut() {
            Some(registry) => {
                registry.insert(app, token);
                true
            }
            None => false,
        }
    }

    /// The deterministic teardown sequence, shared by
    /// [`shutdown`](Self::shutdown) and `Drop` (idempotent): flip the
    /// stop flag, wake the reactor out of `poll` (it closes every
    /// connection and the listener on its way out), then stop the job
    /// queue and join the workers. No step waits on a timeout — a
    /// wedged peer cannot stall teardown, because the reactor closes
    /// sockets rather than waiting for them.
    fn stop_serving(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        self.queue.stop();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Stops accepting, disconnects any live clients, joins the reactor
    /// and worker threads, and returns the shared ecovisor (sole
    /// ownership can be reclaimed with `Arc::try_unwrap` once all
    /// clients are dropped).
    pub fn shutdown(mut self) -> SharedEcovisor {
        self.stop_serving();
        Arc::clone(&self.ctx.shared)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_serving();
    }
}

// ----------------------------------------------------------------------
// Remote client
// ----------------------------------------------------------------------

/// The out-of-process protocol handle: same [`EnergyClient`] surface as
/// [`crate::client::EcovisorClient`], transported over a framed TCP
/// connection.
///
/// On a v2-negotiated connection the client also *receives*: event
/// frames the server pushes (after
/// [`subscribe_events`](EnergyClient::subscribe_events)) are collected
/// into an inbox while
/// responses are awaited — drain them with [`EnergyClient::events`] /
/// [`take_event_frames`](Self::take_event_frames), wait for the next one
/// with [`recv_event`](Self::recv_event), or install a callback with
/// [`set_event_handler`](Self::set_event_handler).
///
/// Transport failures surface as [`EnergyResponse::Err`] values carrying
/// [`ProtoError::Other`] — the failures-are-values contract extends over
/// the network, so a policy loop sees a dead server the same way it sees
/// a scope denial.
pub struct RemoteEcovisorClient {
    stream: TcpStream,
    codec: WireCodec,
    version: u16,
    app: AppId,
    queue: Vec<EnergyRequest>,
    broken: bool,
    inbox: Vec<EventFrame>,
    handler: Option<EventHandler>,
    /// Grow-only read buffer reused across frames (see
    /// [`read_frame_into`]).
    rbuf: Vec<u8>,
}

impl std::fmt::Debug for RemoteEcovisorClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteEcovisorClient")
            .field("app", &self.app)
            .field("codec", &self.codec)
            .field("version", &self.version)
            .field("queued", &self.queue.len())
            .field("inbox", &self.inbox.len())
            .finish_non_exhaustive()
    }
}

impl RemoteEcovisorClient {
    /// Connects and negotiates: offers every supported protocol version
    /// (the server picks the highest shared) and prefers the binary
    /// codec with JSON fallback.
    ///
    /// # Errors
    ///
    /// On connection failure or a rejected hello.
    pub fn connect(addr: impl ToSocketAddrs, app: AppId) -> io::Result<Self> {
        Self::connect_full(addr, app, WireCodec::preferred(), None)
    }

    /// Connects offering an explicit codec preference list.
    ///
    /// # Errors
    ///
    /// On connection failure, a rejected hello, or an empty codec list.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        app: AppId,
        codecs: Vec<WireCodec>,
    ) -> io::Result<Self> {
        Self::connect_full(addr, app, codecs, None)
    }

    /// Connects presenting `credential` as the app's token — required
    /// against a server built with a [`CredentialRegistry`].
    ///
    /// # Errors
    ///
    /// On connection failure or a rejected hello (including a wrong
    /// token).
    pub fn connect_with_credential(
        addr: impl ToSocketAddrs,
        app: AppId,
        credential: impl Into<String>,
    ) -> io::Result<Self> {
        Self::connect_full(addr, app, WireCodec::preferred(), Some(credential.into()))
    }

    /// The full-control connect: explicit codec list and optional
    /// credential.
    ///
    /// Negotiation is symmetric across releases: a server too old to
    /// parse the v2 hello rejects it as malformed, and this client then
    /// retries once with the legacy v1 [`ClientHello`] — so a new
    /// client downgrades against an old server just as an old client is
    /// served by a new one. The retry is skipped when a credential was
    /// supplied: a v1 hello cannot carry it, and silently connecting
    /// unauthenticated would defeat the point.
    ///
    /// # Errors
    ///
    /// On connection failure, a rejected hello, or a server that
    /// accepted a version this client never offered.
    pub fn connect_full(
        addr: impl ToSocketAddrs,
        app: AppId,
        codecs: Vec<WireCodec>,
        credential: Option<String>,
    ) -> io::Result<Self> {
        // Resolve once so the legacy retry can reconnect.
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let has_credential = credential.is_some();
        let hello = ClientHelloV2::new(app, codecs.clone(), credential);
        let versions = hello.versions.clone();
        match Self::handshake(&addrs[..], &WireCodec::Json.encode(&hello)) {
            Ok((stream, version, codec)) => {
                if !versions.contains(&version) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server accepted v{version}, which this client never offered"),
                    ));
                }
                Ok(Self::assemble(stream, codec, version, app))
            }
            // A pre-v2 server cannot parse the v2 hello shape and
            // rejects it as malformed; fall back to the v1 hello.
            Err(e)
                if !has_credential
                    && e.kind() == io::ErrorKind::ConnectionRefused
                    && e.to_string().contains("malformed hello") =>
            {
                Self::connect_v1_with(&addrs[..], app, codecs)
            }
            Err(e) => Err(e),
        }
    }

    /// Connects as a **v1-only legacy client**: sends the original
    /// [`ClientHello`] and speaks the bare request/response wire, with
    /// no frame layer and no push. Exists so the old protocol's
    /// compatibility is a tested behavior, not an assumption.
    ///
    /// # Errors
    ///
    /// On connection failure or a rejected hello (e.g. a credentialed
    /// server, which refuses credential-less v1 hellos).
    pub fn connect_v1(addr: impl ToSocketAddrs, app: AppId) -> io::Result<Self> {
        Self::connect_v1_with(addr, app, WireCodec::preferred())
    }

    fn connect_v1_with(
        addr: impl ToSocketAddrs,
        app: AppId,
        codecs: Vec<WireCodec>,
    ) -> io::Result<Self> {
        let hello = ClientHello::new(app, codecs);
        let (stream, version, codec) = Self::handshake(addr, &WireCodec::Json.encode(&hello))?;
        if version != PROTOCOL_V1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server accepted v{version} against a v1-only hello"),
            ));
        }
        Ok(Self::assemble(stream, codec, PROTOCOL_V1, app))
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        hello_payload: &[u8],
    ) -> io::Result<(TcpStream, u16, WireCodec)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, hello_payload)?;
        let reply = read_frame(&mut stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed during hello",
            )
        })?;
        let reply: ServerHello = WireCodec::Json
            .decode(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad hello: {e}")))?;
        match reply {
            ServerHello::Accept { version, codec } => Ok((stream, version, codec)),
            ServerHello::Reject { reason } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
        }
    }

    fn assemble(stream: TcpStream, codec: WireCodec, version: u16, app: AppId) -> Self {
        Self {
            stream,
            codec,
            version,
            app,
            queue: Vec::new(),
            broken: false,
            inbox: Vec::new(),
            handler: None,
            rbuf: Vec::new(),
        }
    }

    /// The codec this connection negotiated.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// The protocol version this connection negotiated (the highest one
    /// both sides speak).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// `true` once the transport has failed; subsequent requests answer
    /// with error values without touching the socket.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Installs a callback fired once per received [`EventFrame`], in
    /// arrival order — whether the frame arrived interleaved with a
    /// response or via [`recv_event`](Self::recv_event). Frames that
    /// arrive interleaved with responses are queued in the inbox after
    /// the callback; a frame [`recv_event`](Self::recv_event) returns
    /// goes to its caller instead and is **not** queued — the callback
    /// is the only surface that observes every frame exactly once.
    pub fn set_event_handler(&mut self, handler: impl FnMut(&EventFrame) + Send + 'static) {
        self.handler = Some(Box::new(handler));
    }

    /// Drains the pushed event frames received so far (settlement-tick
    /// stamps included). [`EnergyClient::events`] is the flattened,
    /// poll-merged form of this.
    pub fn take_event_frames(&mut self) -> Vec<EventFrame> {
        std::mem::take(&mut self.inbox)
    }

    /// Blocks until the server pushes the next event frame (or returns
    /// one already queued). Requires a v2 connection and an active
    /// subscription to ever return; a read timeout configured on the
    /// socket surfaces as the corresponding I/O error.
    ///
    /// # Errors
    ///
    /// On a v1 connection (no push on that wire), a broken transport, or
    /// any I/O/decode failure.
    pub fn recv_event(&mut self) -> io::Result<EventFrame> {
        if !self.inbox.is_empty() {
            return Ok(self.inbox.remove(0));
        }
        if self.version < PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "event push requires protocol v2",
            ));
        }
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection already failed",
            ));
        }
        loop {
            match self.read_v2_frame()? {
                Frame::Event(frame) => {
                    if let Some(handler) = self.handler.as_mut() {
                        handler(&frame);
                    }
                    return Ok(frame);
                }
                Frame::Control(_) => {}
                Frame::Response(_) | Frame::Request(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unsolicited non-event frame",
                    ));
                }
            }
        }
    }

    /// Reads and decodes one v2 frame, answering pings inline.
    fn read_v2_frame(&mut self) -> io::Result<Frame> {
        loop {
            let len = read_frame_into(&mut self.stream, &mut self.rbuf)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::ConnectionAborted, "server closed connection")
            })?;
            let frame: Frame = self
                .codec
                .decode(&self.rbuf[..len])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if let Frame::Control(ControlFrame::Ping) = frame {
                let payload = self.codec.encode(&Frame::Control(ControlFrame::Pong));
                write_frame(&mut self.stream, &payload)?;
                continue;
            }
            return Ok(frame);
        }
    }

    /// Buffers a pushed frame (handler first, inbox second).
    fn deliver(&mut self, frame: EventFrame) {
        if let Some(handler) = self.handler.as_mut() {
            handler(&frame);
        }
        self.inbox.push(frame);
    }

    fn round_trip(&mut self, batch: &RequestBatch) -> io::Result<ResponseBatch> {
        if self.version >= PROTOCOL_VERSION {
            // v2: framed request, then read until our response arrives —
            // pushed event frames interleave and are buffered in order.
            let payload = self.codec.encode(&Frame::Request(batch.clone()));
            write_frame(&mut self.stream, &payload)?;
            loop {
                match self.read_v2_frame()? {
                    Frame::Response(resp) => return Ok(resp),
                    Frame::Event(frame) => self.deliver(frame),
                    Frame::Control(_) => {}
                    Frame::Request(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "server sent a request frame",
                        ));
                    }
                }
            }
        } else {
            // v1: the bare request/response wire, unchanged.
            write_frame(&mut self.stream, &self.codec.encode(batch))?;
            let len = read_frame_into(&mut self.stream, &mut self.rbuf)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::ConnectionAborted, "server closed mid-batch")
            })?;
            self.codec
                .decode(&self.rbuf[..len])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    }

    /// Pulls a complete [`Snapshot`] of the server's ecovisor over the
    /// admin checkpoint surface ([`EnergyRequest::Snapshot`], chunked):
    /// chunk 0 captures it under the settlement barrier and caches the
    /// encoding on the server side of this connection; further chunks
    /// page the same point-in-time image out.
    ///
    /// Requires a v2 connection to a server that authenticated this
    /// connection's credential (built
    /// [`with_credentials`](EcovisorServer::with_credentials)); a server
    /// without a credential registry answers
    /// [`ProtoError::Denied`], surfaced here as
    /// [`io::ErrorKind::PermissionDenied`].
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, a denied admin surface,
    /// or an undecodable payload.
    pub fn fetch_snapshot(&mut self) -> io::Result<Snapshot> {
        let mut bytes = Vec::new();
        let mut chunk = 0u32;
        loop {
            match self.admin_round_trip(EnergyRequest::Snapshot { chunk })? {
                EnergyResponse::SnapshotChunk { index, total, data } => {
                    if index != chunk || total == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("snapshot chunk {index}/{total}, expected {chunk}"),
                        ));
                    }
                    bytes.extend_from_slice(&data);
                    if index + 1 >= total {
                        break;
                    }
                    chunk += 1;
                }
                EnergyResponse::Err(e) => {
                    return Err(io::Error::new(
                        admin_error_kind(&e),
                        format!("server refused snapshot: {e}"),
                    ));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected snapshot response: {other:?}"),
                    ));
                }
            }
        }
        Snapshot::from_bytes(&bytes).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot payload undecodable: {e}"),
            )
        })
    }

    /// Seeds the server's ecovisor from `snap` over the admin checkpoint
    /// surface ([`EnergyRequest::Restore`], chunked). On success the
    /// remote process holds exactly the captured state and continues
    /// bit-identically to the process the snapshot came from (given the
    /// same subsequent traffic and the same solar/carbon traces).
    ///
    /// # Errors
    ///
    /// Everything [`fetch_snapshot`](Self::fetch_snapshot) can fail
    /// with, plus the server-side validation failures of
    /// [`Ecovisor::apply_snapshot`](crate::Ecovisor::apply_snapshot),
    /// surfaced as refusal messages.
    pub fn push_restore(&mut self, snap: &Snapshot) -> io::Result<()> {
        let bytes = snap.to_bytes();
        let total = chunk_count(bytes.len());
        for (i, piece) in bytes.chunks(SNAPSHOT_CHUNK_LEN).enumerate() {
            let index = u32::try_from(i).unwrap_or(u32::MAX);
            let request = EnergyRequest::Restore {
                index,
                total,
                data: piece.to_vec(),
            };
            match self.admin_round_trip(request)? {
                EnergyResponse::Ok => {}
                EnergyResponse::Err(e) => {
                    return Err(io::Error::new(
                        admin_error_kind(&e),
                        format!("server refused restore: {e}"),
                    ));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected restore response: {other:?}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Downloads one tenant's capture over the admin migration surface
    /// ([`EnergyRequest::MigrateOut`], chunked like
    /// [`fetch_snapshot`](Self::fetch_snapshot)). The tenant **keeps
    /// running on the server** — after grafting the capture onto the
    /// destination ([`push_tenant`](Self::push_tenant)), commit the move
    /// with [`commit_migration`](Self::commit_migration).
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, a denied admin surface,
    /// an unknown tenant, or an undecodable payload.
    pub fn fetch_tenant(&mut self, app: AppId) -> io::Result<crate::federation::TenantSnapshot> {
        let mut bytes = Vec::new();
        let mut chunk = 0u32;
        loop {
            match self.admin_round_trip(EnergyRequest::MigrateOut { app, chunk })? {
                EnergyResponse::SnapshotChunk { index, total, data } => {
                    if index != chunk || total == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("migrate-out chunk {index}/{total}, expected {chunk}"),
                        ));
                    }
                    bytes.extend_from_slice(&data);
                    if index + 1 >= total {
                        break;
                    }
                    chunk += 1;
                }
                EnergyResponse::Err(e) => {
                    return Err(io::Error::new(
                        admin_error_kind(&e),
                        format!("server refused migrate-out: {e}"),
                    ));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected migrate-out response: {other:?}"),
                    ));
                }
            }
        }
        crate::federation::TenantSnapshot::from_bytes(&bytes).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("tenant capture undecodable: {e}"),
            )
        })
    }

    /// Grafts a tenant capture onto the server
    /// ([`EnergyRequest::MigrateIn`], chunked). A rejection — tampered
    /// bytes, environment mismatch, colliding id — leaves the server
    /// untouched.
    ///
    /// # Errors
    ///
    /// Everything [`push_restore`](Self::push_restore) can fail with,
    /// plus the server-side validation failures of
    /// [`Ecovisor::graft_app`](crate::Ecovisor::graft_app).
    pub fn push_tenant(&mut self, snap: &crate::federation::TenantSnapshot) -> io::Result<()> {
        let bytes = snap.to_bytes();
        let total = chunk_count(bytes.len());
        for (i, piece) in bytes.chunks(SNAPSHOT_CHUNK_LEN).enumerate() {
            let index = u32::try_from(i).unwrap_or(u32::MAX);
            let request = EnergyRequest::MigrateIn {
                index,
                total,
                data: piece.to_vec(),
            };
            match self.admin_round_trip(request)? {
                EnergyResponse::Ok => {}
                EnergyResponse::Err(e) => {
                    return Err(io::Error::new(
                        admin_error_kind(&e),
                        format!("server refused migrate-in: {e}"),
                    ));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected migrate-in response: {other:?}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Commits a migration on the **source** server: evicts the tenant.
    /// Send only after [`push_tenant`](Self::push_tenant) succeeded on
    /// the destination.
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, a denied admin surface,
    /// or an unknown tenant.
    pub fn commit_migration(&mut self, app: AppId) -> io::Result<()> {
        self.admin_ack(EnergyRequest::MigrateCommit { app }, "migrate-commit")
    }

    /// Federated tick, phase one: begins the server's tick and returns
    /// its local demand views (see `docs/FEDERATION.md` for the
    /// coordinator choreography).
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, or a denied admin
    /// surface.
    pub fn fed_collect(&mut self) -> io::Result<Vec<crate::federation::FedAppView>> {
        match self.admin_round_trip(EnergyRequest::FedCollect)? {
            EnergyResponse::Demands(views) => Ok(views),
            EnergyResponse::Err(e) => Err(io::Error::new(
                admin_error_kind(&e),
                format!("server refused fed-collect: {e}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected fed-collect response: {other:?}"),
            )),
        }
    }

    /// Federated tick, phase two: settles the globally merged view list
    /// on the server and advances its clock.
    ///
    /// # Errors
    ///
    /// Everything [`fed_collect`](Self::fed_collect) can fail with, plus
    /// the server-side validation failures of
    /// [`Ecovisor::settle_with_views`](crate::Ecovisor::settle_with_views).
    pub fn fed_settle(&mut self, views: &[crate::federation::FedAppView]) -> io::Result<()> {
        self.admin_ack(
            EnergyRequest::FedSettle {
                views: views.to_vec(),
            },
            "fed-settle",
        )
    }

    /// Aligns the server's container-id cursor to the coordinator's
    /// global cursor (refused if it would move backwards).
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, a denied admin surface,
    /// or a backwards cursor.
    pub fn fed_align(&mut self, next_container: u64) -> io::Result<()> {
        self.admin_ack(EnergyRequest::FedAlign { next_container }, "fed-align")
    }

    /// Reads the server's container-id cursor.
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, or a denied admin
    /// surface.
    pub fn fed_cursor(&mut self) -> io::Result<u64> {
        match self.admin_round_trip(EnergyRequest::FedCursor)? {
            EnergyResponse::Count(n) => Ok(n as u64),
            EnergyResponse::Err(e) => Err(io::Error::new(
                admin_error_kind(&e),
                format!("server refused fed-cursor: {e}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected fed-cursor response: {other:?}"),
            )),
        }
    }

    /// Fetches the server's observability report: serving-level gauges
    /// plus a full dump of the attached metric registry (dispatch
    /// latency histograms, reactor queue depths, settlement-barrier
    /// timings — see `docs/OBSERVABILITY.md` for the catalogue).
    ///
    /// # Errors
    ///
    /// On a v1 connection, a broken transport, or a denied admin
    /// surface (the `Stats` request is credential-gated like every
    /// other admin request).
    pub fn fetch_stats(&mut self) -> io::Result<crate::proto::StatsReport> {
        match self.admin_round_trip(EnergyRequest::Stats)? {
            EnergyResponse::Stats(report) => Ok(report),
            EnergyResponse::Err(e) => Err(io::Error::new(
                admin_error_kind(&e),
                format!("server refused stats: {e}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected stats response: {other:?}"),
            )),
        }
    }

    /// Sends one ack-style admin request and maps its response to `()`.
    fn admin_ack(&mut self, request: EnergyRequest, what: &str) -> io::Result<()> {
        match self.admin_round_trip(request)? {
            EnergyResponse::Ok => Ok(()),
            EnergyResponse::Err(e) => Err(io::Error::new(
                admin_error_kind(&e),
                format!("server refused {what}: {e}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected {what} response: {other:?}"),
            )),
        }
    }

    /// Sends one admin request as its own batch and returns its response
    /// (queued requests are flushed first, so ordering is preserved).
    fn admin_round_trip(&mut self, request: EnergyRequest) -> io::Result<EnergyResponse> {
        if self.version < PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the admin checkpoint surface requires protocol v2",
            ));
        }
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection already failed",
            ));
        }
        self.flush();
        let batch = RequestBatch {
            version: self.version,
            app: self.app,
            requests: vec![request],
        };
        let mut resp = match self.round_trip(&batch) {
            Ok(resp) => resp,
            Err(e) => {
                self.broken = true;
                return Err(e);
            }
        };
        resp.responses
            .pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty admin response batch"))
    }

    /// One transport-failure response per request, so batch arithmetic
    /// (one response per request, in order) holds even when the wire dies.
    fn failure_batch(&self, batch: &RequestBatch, err: &io::Error) -> ResponseBatch {
        ResponseBatch {
            version: self.version,
            app: batch.app,
            responses: vec![
                EnergyResponse::Err(ProtoError::Other(format!("transport: {err}")));
                batch.requests.len()
            ],
        }
    }
}

impl EnergyClient for RemoteEcovisorClient {
    fn app_id(&self) -> AppId {
        self.app
    }

    fn pending(&self) -> &Vec<EnergyRequest> {
        &self.queue
    }

    fn pending_mut(&mut self) -> &mut Vec<EnergyRequest> {
        &mut self.queue
    }

    /// Batches are stamped with the *negotiated* version: a v1
    /// connection emits v1 envelopes, so the dispatcher's per-request
    /// version gate (not the transport) answers v2-only requests.
    fn protocol_version(&self) -> u16 {
        self.version
    }

    fn transport(&mut self, batch: RequestBatch) -> ResponseBatch {
        if self.broken {
            let err = io::Error::new(io::ErrorKind::NotConnected, "connection already failed");
            return self.failure_batch(&batch, &err);
        }
        match self.round_trip(&batch) {
            Ok(resp) => resp,
            Err(e) => {
                self.broken = true;
                self.failure_batch(&batch, &e)
            }
        }
    }

    /// Pushed-then-polled drain: event frames already received off the
    /// wire come first (in arrival order), then whatever the server-side
    /// outbox still holds. With an active subscription the poll is
    /// empty — push drained the outbox at settlement — so the sequence
    /// is exactly the pushed one.
    fn events(&mut self) -> Vec<Notification> {
        let polled = self.poll_events().unwrap_or_default();
        let mut out: Vec<Notification> = self
            .inbox
            .drain(..)
            .flat_map(|frame| frame.events)
            .collect();
        out.extend(polled);
        out
    }
}

impl Drop for RemoteEcovisorClient {
    fn drop(&mut self) {
        if !self.broken {
            // Tick-boundary safety net, mirroring the local client.
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).expect("read").as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut header = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        header.extend_from_slice(&[0; 8]);
        let mut cursor = io::Cursor::new(header);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        buf.truncate(6);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn hello_types_round_trip_in_json() {
        let hello = ClientHello::new(AppId::new(3), WireCodec::preferred());
        assert_eq!(hello.version, PROTOCOL_V1, "legacy hello speaks v1");
        let back: ClientHello = WireCodec::Json
            .decode(&WireCodec::Json.encode(&hello))
            .expect("decode");
        assert_eq!(back, hello);
        let hello2 = ClientHelloV2::new(
            AppId::new(3),
            WireCodec::preferred(),
            Some("tenant-token".into()),
        );
        assert_eq!(hello2.versions, SUPPORTED_VERSIONS.to_vec());
        let back2: ClientHelloV2 = WireCodec::Json
            .decode(&WireCodec::Json.encode(&hello2))
            .expect("decode");
        assert_eq!(back2, hello2);
        for reply in [
            ServerHello::Accept {
                version: PROTOCOL_VERSION,
                codec: WireCodec::Binary,
            },
            ServerHello::Reject {
                reason: "no common codec".into(),
            },
        ] {
            let back: ServerHello = WireCodec::Json
                .decode(&WireCodec::Json.encode(&reply))
                .expect("decode");
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn hello_shapes_never_ambiguate() {
        // A v2 hello must not parse as a v1 hello and vice versa: the
        // server's try-v2-then-v1 order depends on it.
        let v2 = WireCodec::Json.encode(&ClientHelloV2::new(
            AppId::new(1),
            WireCodec::preferred(),
            None,
        ));
        assert!(WireCodec::Json.decode::<ClientHello>(&v2).is_err());
        let v1 = WireCodec::Json.encode(&ClientHello::new(AppId::new(1), WireCodec::preferred()));
        assert!(WireCodec::Json.decode::<ClientHelloV2>(&v1).is_err());
    }

    #[test]
    fn codecs_agree_on_payloads() {
        let batch = RequestBatch::new(
            AppId::new(1),
            vec![
                EnergyRequest::GetSolarPower,
                EnergyRequest::SetBatteryChargeRate {
                    rate: simkit::units::Watts::new(80.0),
                },
            ],
        );
        for codec in WireCodec::preferred() {
            let back: RequestBatch = codec.decode(&codec.encode(&batch)).expect("decode");
            assert_eq!(back, batch, "{codec:?}");
        }
        // The v2 frame wrapper round-trips in both codecs too.
        let frame = Frame::Event(EventFrame {
            version: PROTOCOL_VERSION,
            app: AppId::new(1),
            tick: 42,
            events: vec![Notification::BatteryFull],
        });
        for codec in WireCodec::preferred() {
            let back: Frame = codec.decode(&codec.encode(&frame)).expect("decode");
            assert_eq!(back, frame, "{codec:?}");
        }
    }

    #[test]
    fn backpressure_parks_events_and_recovers() {
        use simkit::units::Watts;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut subscriber = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        // The write bound is what turns a hung subscriber into
        // backpressure instead of an indefinitely parked broadcast.
        server_side
            .set_write_timeout(Some(Duration::from_millis(50)))
            .expect("write timeout");
        // Generous read bound: only a real delivery bug should trip it.
        subscriber
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let conn = Arc::new(ConnShared {
            app: AppId::new(1),
            codec: WireCodec::Binary,
            writer: Mutex::new(Arc::new(server_side)),
            filter: Mutex::new(Some(EventFilter::all())),
            pending: Mutex::new(PendingWrites::default()),
            notify: None,
            obs: None,
        });
        let policy = OutboxPolicy::with_cap(2);
        let level = |w: f64| Notification::SolarChange {
            previous: Watts::new(0.0),
            current: Watts::new(w),
        };
        let frame = |tick: u64, events: Vec<Notification>| EventFrame {
            version: PROTOCOL_VERSION,
            app: AppId::new(1),
            tick,
            events,
        };

        // Fill the socket buffers with frames the subscriber never
        // reads, until a frame has to stay committed-but-unwritten.
        let mut tick = 0u64;
        let mut committed_frames = 0usize;
        for _ in 0..10 {
            tick += 1;
            conn.push_event(frame(tick, vec![level(1.0); 200_000]), policy);
            committed_frames += 1;
            if crate::lock::lock(&conn.pending).queued_bytes() > 0 {
                break;
            }
        }
        assert!(
            crate::lock::lock(&conn.pending).queued_bytes() > 0,
            "socket buffers never filled; cannot exercise backpressure"
        );

        // Further frames park under the outbox policy: every edge
        // survives, levels coalesce at the cap — and the socket is NOT
        // shut down.
        let parked_edges = 4usize;
        for _ in 0..parked_edges {
            tick += 1;
            conn.push_event(
                frame(tick, vec![level(tick as f64), Notification::BatteryFull]),
                policy,
            );
        }
        {
            let pending = crate::lock::lock(&conn.pending);
            let edges = pending
                .parked
                .iter()
                .filter(|e| e.is_edge_triggered())
                .count();
            let levels = pending.parked.len() - edges;
            assert_eq!(edges, parked_edges, "no edge event may ever be dropped");
            assert!(
                levels <= 2,
                "levels must respect the policy cap, got {levels}"
            );
        }

        // The subscriber wakes up and drains; a driver thread retries
        // the backlog the way every settlement would. Everything
        // committed arrives intact, plus one recovery frame carrying the
        // parked events.
        let stop = Arc::new(AtomicBool::new(false));
        let retrier = {
            let conn = Arc::clone(&conn);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    conn.retry_backlog();
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let mut drained: Vec<EventFrame> = Vec::new();
        for _ in 0..committed_frames + 1 {
            let payload = read_frame(&mut subscriber)
                .expect("subscriber read")
                .expect("stream stayed open");
            match WireCodec::Binary.decode::<Frame>(&payload).expect("frame") {
                Frame::Event(f) => drained.push(f),
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        stop.store(true, Ordering::SeqCst);
        retrier.join().expect("retrier");
        assert_eq!(
            drained.len(),
            committed_frames + 1,
            "committed frames plus exactly one recovery frame"
        );
        let recovered = drained.last().expect("recovery frame");
        assert_eq!(recovered.tick, tick, "stamped with the newest parked tick");
        let edge_count = drained
            .iter()
            .flat_map(|f| f.events.iter())
            .filter(|e| e.is_edge_triggered())
            .count();
        assert_eq!(edge_count, parked_edges, "each edge delivered exactly once");
        let pending = crate::lock::lock(&conn.pending);
        assert!(pending.parked.is_empty());
        assert_eq!(pending.queued_bytes(), 0);
        assert_eq!(pending.queued_frames, 0);
    }

    #[test]
    fn constant_time_eq_is_correct() {
        assert!(constant_time_eq(b"secret", b"secret"));
        assert!(!constant_time_eq(b"secret", b"secreT"));
        assert!(!constant_time_eq(b"secret", b"secret2"));
        assert!(!constant_time_eq(b"", b"x"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn credential_registry_verifies() {
        let creds = CredentialRegistry::new().with(AppId::new(1), "alpha-token");
        assert!(creds.verify(AppId::new(1), Some("alpha-token")));
        assert!(!creds.verify(AppId::new(1), Some("beta-token")));
        assert!(!creds.verify(AppId::new(1), None));
        assert!(!creds.verify(AppId::new(2), Some("alpha-token")));
        // An empty presented token against an unregistered app must not
        // accidentally compare equal to the absent-entry placeholder.
        assert!(!creds.verify(AppId::new(2), Some("")));
    }
}
