//! The protocol dispatcher: the one hot path for all API traffic.
//!
//! Every application-facing operation — whether it arrives through the
//! [`EcovisorClient`](crate::client::EcovisorClient) handle, the
//! [`ScopedApi`](crate::ecovisor::ScopedApi) compatibility façade, or a
//! raw replayed [`RequestBatch`] — funnels through
//! [`Ecovisor::dispatch`]. The dispatcher:
//!
//! 1. validates the batch envelope (protocol version, registered app);
//! 2. enforces **scope**: a request can only observe or mutate state
//!    belonging to the envelope's [`AppId`] — cross-tenant container
//!    references come back as [`ProtoError::Scope`] *values*, they never
//!    panic and never leak another tenant's state;
//! 3. executes each request against the app's virtual energy system and
//!    the shared substrates (COP, TSDB, clock, carbon service);
//! 4. optionally records the batch into a protocol trace for replay.
//!    Recording hooks [`Ecovisor::dispatch_batch`], so it captures all
//!    *batch* traffic — every [`EcovisorClient`](crate::client) call and
//!    every raw batch — but not calls made through the legacy
//!    [`ScopedApi`](crate::ecovisor::ScopedApi) façade, which dispatches
//!    single requests without an envelope.

use container_cop::{AppId, ContainerId};
use simkit::units::{Co2Grams, WattHours};

use crate::ecovisor::Ecovisor;
use crate::proto::{
    EnergyRequest, EnergyResponse, ProtoError, RequestBatch, ResponseBatch, PROTOCOL_VERSION,
};

/// One recorded dispatch, stamped with the tick it executed in.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceEntry {
    /// Tick index at dispatch time.
    pub tick: u64,
    /// The batch as received.
    pub batch: RequestBatch,
}

/// A recorded protocol trace: the ordered batch traffic of a run — every
/// [`EcovisorClient`](crate::client::EcovisorClient) call and raw batch.
/// (Calls through the legacy [`ScopedApi`](crate::ecovisor::ScopedApi)
/// façade dispatch without an envelope and are not recorded; drive
/// applications through the client when capturing a replayable run.)
///
/// Serializable, so a trace taken from one process can be
/// [`replayed`](Ecovisor::replay) against another ecovisor.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ProtocolTrace {
    /// Entries in dispatch order.
    pub entries: Vec<TraceEntry>,
}

impl ProtocolTrace {
    /// Total number of requests across all entries.
    pub fn request_count(&self) -> usize {
        self.entries.iter().map(|e| e.batch.requests.len()).sum()
    }
}

impl Ecovisor {
    /// Executes a request batch: validates the envelope, then answers
    /// each request in order. One response per request, always — errors
    /// are [`EnergyResponse::Err`] values and never abort the batch.
    pub fn dispatch_batch(&mut self, batch: &RequestBatch) -> ResponseBatch {
        if let Some(trace) = self.proto_trace.as_mut() {
            trace.entries.push(TraceEntry {
                tick: self.clock.tick_index(),
                batch: batch.clone(),
            });
        }
        let responses = if batch.version != PROTOCOL_VERSION {
            vec![
                EnergyResponse::Err(ProtoError::Version {
                    expected: PROTOCOL_VERSION,
                    got: batch.version,
                });
                batch.requests.len()
            ]
        } else if !self.apps.contains_key(&batch.app) {
            vec![EnergyResponse::Err(ProtoError::UnknownApp(batch.app)); batch.requests.len()]
        } else {
            batch
                .requests
                .iter()
                .map(|req| self.dispatch(batch.app, req))
                .collect()
        };
        ResponseBatch {
            version: PROTOCOL_VERSION,
            app: batch.app,
            responses,
        }
    }

    /// Executes one request under `app`'s scope. Commands and queries
    /// both route here; this is the single entry point all API surfaces
    /// share.
    pub fn dispatch(&mut self, app: AppId, request: &EnergyRequest) -> EnergyResponse {
        use EnergyRequest::*;
        if request.is_query() {
            return self.dispatch_query(app, request);
        }
        if !self.apps.contains_key(&app) {
            return EnergyResponse::Err(ProtoError::UnknownApp(app));
        }
        match request {
            SetContainerPowercap { container, cap } => {
                self.with_owned(app, *container, |eco, c| {
                    eco.cop
                        .set_power_cap(c, Some(*cap))
                        .map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            ClearContainerPowercap { container } => self.with_owned(app, *container, |eco, c| {
                eco.cop.set_power_cap(c, None).map_err(ProtoError::from)?;
                Ok(EnergyResponse::Ok)
            }),
            SetBatteryChargeRate { rate } => {
                self.app_state_mut(app).ves.set_charge_rate(*rate);
                EnergyResponse::Ok
            }
            SetBatteryMaxDischarge { rate } => {
                self.app_state_mut(app).ves.set_max_discharge(*rate);
                EnergyResponse::Ok
            }
            LaunchContainer { spec } => match self.cop.launch(app, *spec) {
                Ok(id) => EnergyResponse::Container(id),
                Err(e) => EnergyResponse::Err(e.into()),
            },
            StopContainer { container } => self.with_owned(app, *container, |eco, c| {
                eco.cop.stop(c).map_err(ProtoError::from)?;
                Ok(EnergyResponse::Ok)
            }),
            SuspendContainer { container } => self.with_owned(app, *container, |eco, c| {
                eco.cop.suspend(c).map_err(ProtoError::from)?;
                Ok(EnergyResponse::Ok)
            }),
            ResumeContainer { container } => self.with_owned(app, *container, |eco, c| {
                eco.cop.resume(c).map_err(ProtoError::from)?;
                Ok(EnergyResponse::Ok)
            }),
            SetContainerDemand { container, demand } => {
                self.with_owned(app, *container, |eco, c| {
                    eco.cop.set_demand(c, *demand).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            SetCarbonRate { rate } => {
                self.app_state_mut(app).carbon_rate_limit = *rate;
                EnergyResponse::Ok
            }
            SetCarbonBudget { budget } => {
                let state = self.app_state_mut(app);
                state.carbon_budget = *budget;
                // Clearing the budget or raising it above the carbon
                // already attributed lifts the grid clamp and re-arms
                // the exhaustion edge. A budget at or below current
                // cumulative carbon stays clamped (and fires no new
                // edge) — otherwise re-setting the same exhausted
                // budget every tick would buy a tick of grid draw each
                // time and defeat enforcement entirely.
                let still_exhausted = budget
                    .is_some_and(|b| state.ves.totals().carbon >= b && state.budget_exhausted);
                state.budget_exhausted = still_exhausted;
                state.ves.set_grid_clamp(still_exhausted);
                EnergyResponse::Ok
            }
            // is_query() returned false, so no query variant reaches here.
            _ => unreachable!("non-command request in command dispatch"),
        }
    }

    /// Executes one read-only request under `app`'s scope against
    /// `&self`. Commands are rejected with [`ProtoError::NotAQuery`].
    pub fn dispatch_query(&self, app: AppId, request: &EnergyRequest) -> EnergyResponse {
        use EnergyRequest::*;
        if !request.is_query() {
            return EnergyResponse::Err(ProtoError::NotAQuery);
        }
        let Some(state) = self.apps.get(&app) else {
            return EnergyResponse::Err(ProtoError::UnknownApp(app));
        };
        match request {
            GetSolarPower => EnergyResponse::Power(state.ves.solar_available()),
            GetGridPower => EnergyResponse::Power(state.ves.grid_power()),
            GetGridCarbon => EnergyResponse::Intensity(self.intensity),
            GetBatteryDischargeRate => EnergyResponse::Power(state.ves.battery_discharge_rate()),
            GetBatteryChargeLevel => EnergyResponse::Energy(state.ves.battery_charge_level()),
            GetContainerPowercap { container } => match self.check_scope(app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => EnergyResponse::PowerCap(
                    self.cop
                        .container(*container)
                        .expect("verified")
                        .power_cap(),
                ),
            },
            GetContainerPower { container } => match self.check_scope(app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => match self.cop.container_power(*container) {
                    Ok(p) => EnergyResponse::Power(p),
                    Err(e) => EnergyResponse::Err(e.into()),
                },
            },
            ListContainers => EnergyResponse::Containers(self.cop.container_ids_of(app)),
            CountRunningContainers => EnergyResponse::Count(self.cop.running_count(app)),
            GetEffectiveCores => EnergyResponse::Cores(self.cop.app_effective_cores(app)),
            GetContainerEffectiveCores { container } => match self.check_scope(app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => EnergyResponse::Cores(
                    self.cop
                        .container(*container)
                        .expect("verified")
                        .effective_cores(),
                ),
            },
            GetTime => EnergyResponse::Time(self.clock.now()),
            GetTickInterval => EnergyResponse::Interval(self.clock.interval()),
            GetAppId => EnergyResponse::App(app),
            GetContainerEnergy {
                container,
                from,
                to,
            } => match self.check_scope(app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => {
                    let ws = self.tsdb.integrate(
                        power_telemetry::metrics::CONTAINER_POWER,
                        &container.to_string(),
                        *from,
                        *to,
                    );
                    EnergyResponse::Energy(WattHours::new(ws / 3600.0))
                }
            },
            GetContainerCarbon {
                container,
                from,
                to,
            } => match self.check_scope(app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => {
                    let grams = self.tsdb.integrate(
                        power_telemetry::metrics::CARBON_RATE,
                        &container.to_string(),
                        *from,
                        *to,
                    );
                    EnergyResponse::Carbon(Co2Grams::new(grams))
                }
            },
            // Instantaneous draw the containers present *this* tick
            // (pre-settlement). Under grid-cap shedding the served power
            // can be lower — energy/carbon integrals (GetAppEnergy,
            // VesTotals) count served power, so integrate those rather
            // than sampling this reading.
            GetAppPower => EnergyResponse::Power(self.cop.app_power(app)),
            GetAppEnergy { from, to } => {
                let ws = self.tsdb.integrate(
                    power_telemetry::metrics::APP_POWER,
                    &app.to_string(),
                    *from,
                    *to,
                );
                EnergyResponse::Energy(WattHours::new(ws / 3600.0))
            }
            GetAppCarbon => EnergyResponse::Carbon(state.ves.totals().carbon),
            GetAppCarbonBetween { from, to } => {
                let grams = self.tsdb.integrate(
                    power_telemetry::metrics::CARBON_RATE,
                    &app.to_string(),
                    *from,
                    *to,
                );
                EnergyResponse::Carbon(Co2Grams::new(grams))
            }
            GetCarbonRateLimit => EnergyResponse::RateLimit(state.carbon_rate_limit),
            GetCarbonBudget => EnergyResponse::Budget(state.carbon_budget),
            GetRemainingCarbonBudget => EnergyResponse::Budget(
                state
                    .carbon_budget
                    .map(|b| (b - state.ves.totals().carbon).max(Co2Grams::ZERO)),
            ),
            // is_query() returned true, so no command variant reaches here.
            _ => unreachable!("non-query request in query dispatch"),
        }
    }

    /// Replays recorded batches through the dispatcher (no re-recording
    /// happens: recording only captures live traffic).
    pub fn replay(&mut self, batches: &[RequestBatch]) -> Vec<ResponseBatch> {
        let recording = self.proto_trace.take();
        let out = batches.iter().map(|b| self.dispatch_batch(b)).collect();
        self.proto_trace = recording;
        out
    }

    /// Starts recording all dispatched batches into a protocol trace
    /// (batch traffic only — see [`ProtocolTrace`] for the scope).
    pub fn enable_protocol_trace(&mut self) {
        if self.proto_trace.is_none() {
            self.proto_trace = Some(ProtocolTrace::default());
        }
    }

    /// Stops recording and returns the trace captured so far, if any.
    pub fn take_protocol_trace(&mut self) -> Option<ProtocolTrace> {
        self.proto_trace.take()
    }

    // ------------------------------------------------------------------
    // Scope enforcement
    // ------------------------------------------------------------------

    /// Scope check as a value: `Err(ProtoError::Scope)` when `container`
    /// belongs to another application, `Err(UnknownContainer)` when it
    /// does not exist.
    pub(crate) fn check_scope(&self, app: AppId, container: ContainerId) -> Result<(), ProtoError> {
        match self.cop.container(container) {
            Some(c) if c.owner() == app => Ok(()),
            Some(_) => Err(ProtoError::Scope { container, app }),
            None => Err(ProtoError::UnknownContainer(container)),
        }
    }

    /// Runs `op` only if `container` is owned by `app`, folding scope
    /// denials and operation failures into an error response.
    fn with_owned(
        &mut self,
        app: AppId,
        container: ContainerId,
        op: impl FnOnce(&mut Self, ContainerId) -> Result<EnergyResponse, ProtoError>,
    ) -> EnergyResponse {
        match self.check_scope(app, container) {
            Ok(()) => match op(self, container) {
                Ok(resp) => resp,
                Err(e) => EnergyResponse::Err(e),
            },
            Err(e) => EnergyResponse::Err(e),
        }
    }

    fn app_state_mut(&mut self, app: AppId) -> &mut crate::ecovisor::AppState {
        self.apps.get_mut(&app).expect("validated before dispatch")
    }
}
