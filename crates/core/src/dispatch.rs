//! The protocol dispatcher: the one hot path for all API traffic.
//!
//! Every application-facing operation — whether it arrives through the
//! [`EcovisorClient`](crate::client::EcovisorClient) handle, the
//! [`ScopedApi`](crate::ecovisor::ScopedApi) compatibility façade, or a
//! raw replayed [`RequestBatch`] — funnels through
//! [`Ecovisor::dispatch`]. The dispatcher:
//!
//! 1. validates the batch envelope (protocol version, registered app);
//! 2. enforces **scope**: a request can only observe or mutate state
//!    belonging to the envelope's [`AppId`] — cross-tenant container
//!    references come back as [`ProtoError::Scope`] *values*, they never
//!    panic and never leak another tenant's state;
//! 3. executes each request against the app's virtual energy system and
//!    the shared substrates (COP, TSDB, clock, carbon service);
//! 4. optionally records the batch into a protocol trace for replay.
//!    Recording hooks [`Ecovisor::dispatch_batch`], so it captures all
//!    *batch* traffic — every [`EcovisorClient`](crate::client) call and
//!    every raw batch — but not calls made through the legacy
//!    [`ScopedApi`](crate::ecovisor::ScopedApi) façade, which dispatches
//!    single requests without an envelope.
//!
//! ## Locking
//!
//! Dispatch takes `&self` and locks only what a batch touches, so
//! traffic from different tenants executes in parallel (the transport
//! spawns a thread per connection; see [`crate::shard`]):
//!
//! * a **query-only batch** holds its app's shard *read* lock for the
//!   whole batch — concurrent queries, even to the same app, never
//!   block each other, and a multi-request batch observes one
//!   consistent shard snapshot;
//! * a batch containing **commands** holds the shard *write* lock for
//!   the whole batch, so its effects become visible atomically to
//!   readers of that shard;
//! * container operations additionally take the shared COP lock
//!   (read for queries, write for commands), and telemetry integrals
//!   take the TSDB read lock — always *after* the shard lock, which
//!   makes the lock order (shard → COP → TSDB) acyclic.
//!
//! Settlement needs `&mut self` and is thereby the only cross-app
//! barrier.

use std::sync::atomic::Ordering;

use container_cop::{AppId, ContainerId, Cop};
use power_telemetry::Tsdb;
use simkit::units::{Co2Grams, WattHours};

use crate::ecovisor::{AppState, Ecovisor};
use crate::lock;
use crate::obs::{CoreMetrics, Histogram};
use crate::proto::{
    EnergyRequest, EnergyResponse, EventFrame, ProtoError, RequestBatch, ResponseBatch,
    PROTOCOL_VERSION, SUPPORTED_VERSIONS,
};

/// Acquires a guard, timing the wait into one of the sampled lock-wait
/// histograms when this batch is an observability sample (`obs` is
/// `Some` only on the 1-in-`DISPATCH_SAMPLE` slow path).
#[inline]
fn timed_lock<G>(
    obs: Option<&CoreMetrics>,
    hist: impl FnOnce(&CoreMetrics) -> &Histogram,
    acquire: impl FnOnce() -> G,
) -> G {
    match obs {
        Some(core) => {
            let start = std::time::Instant::now();
            let guard = acquire();
            hist(core).record_duration(start.elapsed());
            guard
        }
        None => acquire(),
    }
}

/// One recorded dispatch, stamped with the tick it executed in.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceEntry {
    /// Tick index at dispatch time.
    pub tick: u64,
    /// The batch as received.
    pub batch: RequestBatch,
}

/// A recorded protocol trace: the ordered batch traffic of a run — every
/// [`EcovisorClient`](crate::client::EcovisorClient) call and raw batch.
/// (Calls through the legacy [`ScopedApi`](crate::ecovisor::ScopedApi)
/// façade dispatch without an envelope and are not recorded; drive
/// applications through the client when capturing a replayable run.)
///
/// Serializable, so a trace taken from one process can be
/// [`replayed`](Ecovisor::replay) against another ecovisor. Under
/// concurrent dispatch, batches are recorded while their shard guard is
/// held, so per app the trace order is the execution order (even with
/// several connections speaking for one app); across apps, any recorded
/// interleaving replays to the same settlement totals because batches
/// from different apps touch disjoint shards between settlements.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ProtocolTrace {
    /// Entries in dispatch order.
    pub entries: Vec<TraceEntry>,
    /// Event frames taken for push delivery
    /// ([`Ecovisor::take_event_frame`]), in settlement order — the
    /// *output* side of the duplex wire. Replay re-executes `entries`
    /// only; a replaying driver that takes event frames at the same tick
    /// cadence regenerates this sequence, so recorded push traffic is
    /// reproducible (tested in `crates/core/tests/protocol_v2.rs`).
    pub events: Vec<EventFrame>,
}

impl ProtocolTrace {
    /// Total number of requests across all entries.
    pub fn request_count(&self) -> usize {
        self.entries.iter().map(|e| e.batch.requests.len()).sum()
    }

    /// Total number of notifications across all recorded event frames.
    pub fn event_count(&self) -> usize {
        self.events.iter().map(|f| f.events.len()).sum()
    }
}

impl Ecovisor {
    /// Executes a request batch: validates the envelope, then answers
    /// each request in order. One response per request, always — errors
    /// are [`EnergyResponse::Err`] values and never abort the batch.
    ///
    /// Takes `&self`: the batch locks only the shard it addresses (read
    /// for query-only batches, write otherwise), so batches from
    /// different applications dispatch in parallel.
    pub fn dispatch_batch(&self, batch: &RequestBatch) -> ResponseBatch {
        // Observability rides the batch as a write-only side channel.
        // Unsampled cost is a single thread-local tally (countdown +
        // pending request count — no atomics); one batch in
        // `DISPATCH_SAMPLE` per thread takes the full-timing path:
        // flush the pending count, whole-batch latency, lock waits, and
        // per-kind counts scaled back up by the sampling factor. With
        // no hub attached — or the `obs` feature off — this folds to
        // nothing.
        let Some(core) = self.obs().map(|hub| &hub.core) else {
            return self.dispatch_batch_inner(batch, None);
        };
        let Some(pending) = core.tally(batch.requests.len() as u64) else {
            return self.dispatch_batch_inner(batch, None);
        };
        core.requests.add(pending);
        let scale = crate::obs::DISPATCH_SAMPLE as u64;
        core.batches.add(scale);
        // Aggregate per-kind locally first: a batch usually repeats a
        // few kinds, so this turns up to `len` striped-counter RMWs
        // into one per distinct kind.
        let mut kinds = [0u32; EnergyRequest::KIND_COUNT];
        for req in &batch.requests {
            kinds[req.kind_index()] += 1;
        }
        for (kind, &n) in kinds.iter().enumerate() {
            if n > 0 {
                core.by_kind[kind].add(u64::from(n) * scale);
            }
        }
        let start = std::time::Instant::now();
        let reply = self.dispatch_batch_inner(batch, Some(core));
        core.batch_latency.record_duration(start.elapsed());
        reply
    }

    fn dispatch_batch_inner(
        &self,
        batch: &RequestBatch,
        obs: Option<&crate::obs::CoreMetrics>,
    ) -> ResponseBatch {
        let responses = if !SUPPORTED_VERSIONS.contains(&batch.version) {
            self.record_trace(batch);
            vec![
                EnergyResponse::Err(ProtoError::Version {
                    expected: PROTOCOL_VERSION,
                    got: batch.version,
                });
                batch.requests.len()
            ]
        } else {
            match self.apps.get(&batch.app) {
                None => {
                    self.record_trace(batch);
                    vec![
                        EnergyResponse::Err(ProtoError::UnknownApp(batch.app));
                        batch.requests.len()
                    ]
                }
                Some(shard) if batch.requests.iter().all(EnergyRequest::is_query) => {
                    // One guard per lock for the whole batch (shard →
                    // COP → TSDB): a consistent snapshot, zero
                    // contention with other readers, and no per-request
                    // re-acquisition. COP/TSDB guards are only taken
                    // when some request actually reads them, so a
                    // pure-shard batch never delays container commands.
                    let state = timed_lock(obs, |c| &c.shard_lock_wait, || lock::read(shard));
                    let cop = batch
                        .requests
                        .iter()
                        .any(EnergyRequest::reads_containers)
                        .then(|| timed_lock(obs, |c| &c.cop_lock_wait, || lock::read(&self.cop)));
                    let tsdb = batch
                        .requests
                        .iter()
                        .any(EnergyRequest::reads_telemetry)
                        .then(|| lock::read(&self.tsdb));
                    self.record_trace(batch);
                    batch
                        .requests
                        .iter()
                        .map(|req| match Self::version_gate(batch.version, req) {
                            Some(err) => err,
                            None => self.query_locked(
                                &state,
                                cop.as_deref(),
                                tsdb.as_deref(),
                                batch.app,
                                req,
                            ),
                        })
                        .collect()
                }
                Some(shard) => {
                    let mut state = timed_lock(obs, |c| &c.shard_lock_wait, || lock::write(shard));
                    // A batch that mutates the container platform holds
                    // the COP write lock for its whole duration and
                    // records its trace entry under it: cross-app
                    // container-id allocation and placement order is
                    // thereby fixed at the batch's trace position, so
                    // replaying the trace reassigns identical ids.
                    let mut cop = batch
                        .requests
                        .iter()
                        .any(EnergyRequest::mutates_containers)
                        .then(|| timed_lock(obs, |c| &c.cop_lock_wait, || lock::write(&self.cop)));
                    self.record_trace(batch);
                    batch
                        .requests
                        .iter()
                        .map(|req| match Self::version_gate(batch.version, req) {
                            Some(err) => err,
                            None => {
                                self.request_locked(&mut state, cop.as_deref_mut(), batch.app, req)
                            }
                        })
                        .collect()
                }
            }
        };
        ResponseBatch {
            // Echo a supported batch's version so a v1 peer gets v1
            // envelopes back, byte-identical to the v1-only dispatcher.
            // Unsupported versions are answered in the server's own
            // version (the error payload names both).
            version: if SUPPORTED_VERSIONS.contains(&batch.version) {
                batch.version
            } else {
                PROTOCOL_VERSION
            },
            app: batch.app,
            responses,
        }
    }

    /// A request that did not exist in the batch's (older, still
    /// supported) protocol version is answered with a per-request
    /// version error: the rest of the batch executes, so a mixed v1
    /// batch degrades gracefully instead of failing wholesale.
    fn version_gate(batch_version: u16, req: &EnergyRequest) -> Option<EnergyResponse> {
        (batch_version < req.min_version()).then(|| {
            EnergyResponse::Err(ProtoError::Version {
                expected: req.min_version(),
                got: batch_version,
            })
        })
    }

    /// Appends `batch` to the protocol trace, if tracing is on.
    ///
    /// Called while holding the batch's shard guard, so for any one app
    /// the trace order **is** the execution order even when several
    /// connections speak for the same app concurrently — a command
    /// batch's trace position is fixed under the same write guard its
    /// effects land under. (Envelope-rejected batches record without a
    /// shard guard; they have no effects to order.)
    fn record_trace(&self, batch: &RequestBatch) {
        if self.tracing.load(Ordering::Relaxed) {
            if let Some(trace) = lock::lock(&self.proto_trace).as_mut() {
                trace.entries.push(TraceEntry {
                    tick: self.clock.tick_index(),
                    batch: batch.clone(),
                });
            }
        }
    }

    /// Executes one request under `app`'s scope. Commands and queries
    /// both route here; this is the single entry point all API surfaces
    /// share.
    pub fn dispatch(&self, app: AppId, request: &EnergyRequest) -> EnergyResponse {
        if request.is_query() {
            return self.dispatch_query(app, request);
        }
        let Some(shard) = self.apps.get(&app) else {
            return EnergyResponse::Err(ProtoError::UnknownApp(app));
        };
        let mut state = lock::write(shard);
        let mut cop = request.mutates_containers().then(|| lock::write(&self.cop));
        self.command_locked(&mut state, cop.as_deref_mut(), app, request)
    }

    /// Executes one read-only request under `app`'s scope against
    /// `&self`. Commands are rejected with [`ProtoError::NotAQuery`].
    pub fn dispatch_query(&self, app: AppId, request: &EnergyRequest) -> EnergyResponse {
        if !request.is_query() {
            return EnergyResponse::Err(ProtoError::NotAQuery);
        }
        let Some(shard) = self.apps.get(&app) else {
            return EnergyResponse::Err(ProtoError::UnknownApp(app));
        };
        let state = lock::read(shard);
        let cop = request.reads_containers().then(|| lock::read(&self.cop));
        let tsdb = request.reads_telemetry().then(|| lock::read(&self.tsdb));
        self.query_locked(&state, cop.as_deref(), tsdb.as_deref(), app, request)
    }

    /// Dispatches one request of a write-locked batch. `cop` is the
    /// batch-wide COP write guard, present iff the batch mutates the
    /// container platform; queries reborrow it (or take a fresh read
    /// guard when the batch holds none).
    fn request_locked(
        &self,
        state: &mut AppState,
        cop: Option<&mut Cop>,
        app: AppId,
        req: &EnergyRequest,
    ) -> EnergyResponse {
        if req.is_query() {
            let fresh_cop =
                (cop.is_none() && req.reads_containers()).then(|| lock::read(&self.cop));
            let tsdb = req.reads_telemetry().then(|| lock::read(&self.tsdb));
            let cop_ro = cop.as_deref().or(fresh_cop.as_deref());
            self.query_locked(state, cop_ro, tsdb.as_deref(), app, req)
        } else {
            self.command_locked(state, cop, app, req)
        }
    }

    /// Executes one command against a write-locked shard. Container
    /// commands use the caller's batch-wide COP write guard (`cop`,
    /// guaranteed present by [`EnergyRequest::mutates_containers`]).
    fn command_locked(
        &self,
        state: &mut AppState,
        cop: Option<&mut Cop>,
        app: AppId,
        request: &EnergyRequest,
    ) -> EnergyResponse {
        use EnergyRequest::*;
        /// The COP guard, which the dispatch entry points acquire for
        /// every batch that `mutates_containers`.
        fn held(cop: Option<&mut Cop>) -> &mut Cop {
            cop.expect("container command dispatched without the COP guard")
        }
        match request {
            SetContainerPowercap { container, cap } => {
                Self::with_owned(held(cop), app, *container, |cop, c| {
                    cop.set_power_cap(c, Some(*cap)).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            ClearContainerPowercap { container } => {
                Self::with_owned(held(cop), app, *container, |cop, c| {
                    cop.set_power_cap(c, None).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            SetBatteryChargeRate { rate } => {
                state.ves.set_charge_rate(*rate);
                EnergyResponse::Ok
            }
            SetBatteryMaxDischarge { rate } => {
                state.ves.set_max_discharge(*rate);
                EnergyResponse::Ok
            }
            LaunchContainer { spec } => match held(cop).launch(app, *spec) {
                Ok(id) => EnergyResponse::Container(id),
                Err(e) => EnergyResponse::Err(e.into()),
            },
            StopContainer { container } => {
                Self::with_owned(held(cop), app, *container, |cop, c| {
                    cop.stop(c).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            SuspendContainer { container } => {
                Self::with_owned(held(cop), app, *container, |cop, c| {
                    cop.suspend(c).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            ResumeContainer { container } => {
                Self::with_owned(held(cop), app, *container, |cop, c| {
                    cop.resume(c).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            SetContainerDemand { container, demand } => {
                Self::with_owned(held(cop), app, *container, |cop, c| {
                    cop.set_demand(c, *demand).map_err(ProtoError::from)?;
                    Ok(EnergyResponse::Ok)
                })
            }
            SetCarbonRate { rate } => {
                state.carbon_rate_limit = *rate;
                EnergyResponse::Ok
            }
            // The pull half of the Table 2 notification surface: drain
            // the app's outbox under the shard write guard the batch
            // already holds. Works in every protocol version.
            PollEvents => EnergyResponse::Events(std::mem::take(&mut state.pending_events)),
            // Subscription is a *connection* property: the transport
            // layer interprets this request for the connection that sent
            // it (see `crate::transport`); dispatch just acknowledges,
            // so in-process and replayed batches stay arity-correct.
            SubscribeEvents { .. } => EnergyResponse::Ok,
            // The admin checkpoint surface works the same way: the
            // transport intercepts these per-connection (chunk caching
            // and assembly live there, behind the credential gate);
            // dispatch just acknowledges, so recorded traces replay
            // arity-correct without re-running a restore.
            Snapshot { .. }
            | Restore { .. }
            | MigrateOut { .. }
            | MigrateIn { .. }
            | MigrateCommit { .. }
            | FedCollect
            | FedSettle { .. }
            | FedAlign { .. }
            | FedCursor
            | Stats => EnergyResponse::Ok,
            SetCarbonBudget { budget } => {
                state.carbon_budget = *budget;
                // Clearing the budget or raising it above the carbon
                // already attributed lifts the grid clamp and re-arms
                // the exhaustion edge. A budget at or below current
                // cumulative carbon stays clamped (and fires no new
                // edge) — otherwise re-setting the same exhausted
                // budget every tick would buy a tick of grid draw each
                // time and defeat enforcement entirely.
                let still_exhausted = budget
                    .is_some_and(|b| state.ves.totals().carbon >= b && state.budget_exhausted);
                state.budget_exhausted = still_exhausted;
                state.ves.set_grid_clamp(still_exhausted);
                EnergyResponse::Ok
            }
            // is_query() returned false, so no query variant reaches here.
            _ => unreachable!("non-command request in command dispatch"),
        }
    }

    /// Executes one query against a read-locked shard, with the shared
    /// substrates locked by the caller (one COP + TSDB guard per batch,
    /// acquired after the shard lock, present iff some request
    /// [`reads_containers`](EnergyRequest::reads_containers) /
    /// [`reads_telemetry`](EnergyRequest::reads_telemetry)).
    fn query_locked(
        &self,
        state: &AppState,
        cop: Option<&Cop>,
        tsdb: Option<&Tsdb>,
        app: AppId,
        request: &EnergyRequest,
    ) -> EnergyResponse {
        use EnergyRequest::*;
        /// The COP guard, which callers acquire for every batch with a
        /// `reads_containers` request.
        fn cop_held(cop: Option<&Cop>) -> &Cop {
            cop.expect("container query dispatched without the COP guard")
        }
        /// The TSDB guard, which callers acquire for every batch with a
        /// `reads_telemetry` request.
        fn tsdb_held(tsdb: Option<&Tsdb>) -> &Tsdb {
            tsdb.expect("telemetry query dispatched without the TSDB guard")
        }
        match request {
            GetSolarPower => EnergyResponse::Power(state.ves.solar_available()),
            GetGridPower => EnergyResponse::Power(state.ves.grid_power()),
            GetGridCarbon => EnergyResponse::Intensity(self.intensity),
            GetBatteryDischargeRate => EnergyResponse::Power(state.ves.battery_discharge_rate()),
            GetBatteryChargeLevel => EnergyResponse::Energy(state.ves.battery_charge_level()),
            GetContainerPowercap { container } => {
                let cop = cop_held(cop);
                match Self::scope_in(cop, app, *container) {
                    Err(e) => EnergyResponse::Err(e),
                    Ok(()) => EnergyResponse::PowerCap(
                        cop.container(*container).expect("verified").power_cap(),
                    ),
                }
            }
            GetContainerPower { container } => {
                let cop = cop_held(cop);
                match Self::scope_in(cop, app, *container) {
                    Err(e) => EnergyResponse::Err(e),
                    Ok(()) => match cop.container_power(*container) {
                        Ok(p) => EnergyResponse::Power(p),
                        Err(e) => EnergyResponse::Err(e.into()),
                    },
                }
            }
            ListContainers => EnergyResponse::Containers(cop_held(cop).container_ids_of(app)),
            CountRunningContainers => EnergyResponse::Count(cop_held(cop).running_count(app)),
            GetEffectiveCores => EnergyResponse::Cores(cop_held(cop).app_effective_cores(app)),
            GetContainerEffectiveCores { container } => {
                let cop = cop_held(cop);
                match Self::scope_in(cop, app, *container) {
                    Err(e) => EnergyResponse::Err(e),
                    Ok(()) => EnergyResponse::Cores(
                        cop.container(*container)
                            .expect("verified")
                            .effective_cores(),
                    ),
                }
            }
            GetTime => EnergyResponse::Time(self.clock.now()),
            GetTickInterval => EnergyResponse::Interval(self.clock.interval()),
            GetAppId => EnergyResponse::App(app),
            GetContainerEnergy {
                container,
                from,
                to,
            } => match Self::scope_in(cop_held(cop), app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => {
                    let ws = tsdb_held(tsdb).integrate(
                        power_telemetry::metrics::CONTAINER_POWER,
                        &container.to_string(),
                        *from,
                        *to,
                    );
                    EnergyResponse::Energy(WattHours::new(ws / 3600.0))
                }
            },
            GetContainerCarbon {
                container,
                from,
                to,
            } => match Self::scope_in(cop_held(cop), app, *container) {
                Err(e) => EnergyResponse::Err(e),
                Ok(()) => {
                    let grams = tsdb_held(tsdb).integrate(
                        power_telemetry::metrics::CARBON_RATE,
                        &container.to_string(),
                        *from,
                        *to,
                    );
                    EnergyResponse::Carbon(Co2Grams::new(grams))
                }
            },
            // Instantaneous draw the containers present *this* tick
            // (pre-settlement). Under grid-cap shedding the served power
            // can be lower — energy/carbon integrals (GetAppEnergy,
            // VesTotals) count served power, so integrate those rather
            // than sampling this reading.
            GetAppPower => EnergyResponse::Power(cop_held(cop).app_power(app)),
            GetAppEnergy { from, to } => {
                let ws = tsdb_held(tsdb).integrate(
                    power_telemetry::metrics::APP_POWER,
                    &app.to_string(),
                    *from,
                    *to,
                );
                EnergyResponse::Energy(WattHours::new(ws / 3600.0))
            }
            GetAppCarbon => EnergyResponse::Carbon(state.ves.totals().carbon),
            GetAppCarbonBetween { from, to } => {
                let grams = tsdb_held(tsdb).integrate(
                    power_telemetry::metrics::CARBON_RATE,
                    &app.to_string(),
                    *from,
                    *to,
                );
                EnergyResponse::Carbon(Co2Grams::new(grams))
            }
            GetCarbonRateLimit => EnergyResponse::RateLimit(state.carbon_rate_limit),
            GetCarbonBudget => EnergyResponse::Budget(state.carbon_budget),
            GetRemainingCarbonBudget => EnergyResponse::Budget(
                state
                    .carbon_budget
                    .map(|b| (b - state.ves.totals().carbon).max(Co2Grams::ZERO)),
            ),
            // is_query() returned true, so no command variant reaches here.
            _ => unreachable!("non-query request in query dispatch"),
        }
    }

    /// Replays recorded batches through the dispatcher (no re-recording
    /// happens: recording only captures live traffic).
    pub fn replay(&mut self, batches: &[RequestBatch]) -> Vec<ResponseBatch> {
        let was_tracing = self.tracing.swap(false, Ordering::Relaxed);
        let out = batches.iter().map(|b| self.dispatch_batch(b)).collect();
        self.tracing.store(was_tracing, Ordering::Relaxed);
        out
    }

    /// Starts recording all dispatched batches into a protocol trace
    /// (batch traffic only — see [`ProtocolTrace`] for the scope).
    pub fn enable_protocol_trace(&mut self) {
        let mut trace = lock::lock(&self.proto_trace);
        if trace.is_none() {
            *trace = Some(ProtocolTrace::default());
        }
        drop(trace);
        *self.tracing.get_mut() = true;
    }

    /// Stops recording and returns the trace captured so far, if any.
    pub fn take_protocol_trace(&mut self) -> Option<ProtocolTrace> {
        *self.tracing.get_mut() = false;
        lock::lock(&self.proto_trace).take()
    }

    // ------------------------------------------------------------------
    // Scope enforcement
    // ------------------------------------------------------------------

    /// Scope check as a value, against an already-locked COP: callers
    /// act on the result under the same guard, so there is no window for
    /// the container to change hands between check and use.
    /// `Err(ProtoError::Scope)` when `container` belongs to another
    /// application, `Err(UnknownContainer)` when it does not exist.
    fn scope_in(cop: &Cop, app: AppId, container: ContainerId) -> Result<(), ProtoError> {
        match cop.container(container) {
            Some(c) if c.owner() == app => Ok(()),
            Some(_) => Err(ProtoError::Scope { container, app }),
            None => Err(ProtoError::UnknownContainer(container)),
        }
    }

    /// Runs `op` only if `container` is owned by `app`, folding scope
    /// denials and operation failures into an error response. Scope is
    /// checked against the same COP guard `op` runs under.
    fn with_owned(
        cop: &mut Cop,
        app: AppId,
        container: ContainerId,
        op: impl FnOnce(&mut Cop, ContainerId) -> Result<EnergyResponse, ProtoError>,
    ) -> EnergyResponse {
        match Self::scope_in(cop, app, container) {
            Ok(()) => match op(cop, container) {
                Ok(resp) => resp,
                Err(e) => EnergyResponse::Err(e),
            },
            Err(e) => EnergyResponse::Err(e),
        }
    }
}
