//! The ecovisor: multiplexing the physical energy system across
//! applications' virtual energy systems.
//!
//! "An ecovisor is akin to a hypervisor but virtualizes the energy system
//! of computing infrastructure" (§1). [`Ecovisor`] owns the physical
//! components (solar array, battery bank, grid, PSU), the container
//! orchestration platform, the carbon information service, and the
//! telemetry store; it exposes each registered application a scoped view
//! ([`ScopedApi`]) implementing the Table 1 and Table 2 APIs over that
//! application's [`VirtualEnergySystem`].
//!
//! Multiplexing (§3.3) "simply requires computing the limit on the
//! maximum battery discharge rates and charging rates across all
//! applications": each tick the ecovisor collects the desired flows of
//! every app, computes per-direction throttle factors against the
//! physical battery's limits, commits the scaled flows, and mirrors the
//! aggregate onto the physical bank, the grid meter, and the PSU.
//!
//! ## Sharded state
//!
//! Per-application state (`AppState`) lives in its own **shard** — a
//! `RwLock<AppState>` keyed by [`AppId`] — while the container platform
//! and telemetry store sit behind their own locks. Dispatch
//! ([`Ecovisor::dispatch_batch`]) therefore needs only `&self`: queries
//! take shard-local *read* locks, so concurrent queries from different
//! tenants (and even from the same tenant) never contend; commands take
//! the owning shard's *write* lock plus the container-platform lock when
//! they touch containers. Settlement keeps `&mut self` — exclusive
//! access is the stop-the-world barrier, and the only cross-app one (see
//! [`crate::shard::ShardedEcovisor`] for the multi-threaded deployment
//! shape).

use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Mutex, RwLock, RwLockReadGuard};

use carbon_intel::service::CarbonService;
use container_cop::{AppId, ContainerId, ContainerSpec, ContainerState, Cop};
use energy_system::battery::Battery;
use energy_system::grid::GridConnection;
use energy_system::psu::ProgrammablePsu;
use energy_system::solar::SolarSource;
use power_telemetry::{metrics, Tsdb};
use simkit::time::{SimDuration, SimTime, TickClock};
use simkit::units::{CarbonIntensity, CarbonRate, Co2Grams, WattHours, Watts};

use crate::api::{EcovisorApi, LibraryApi};
use crate::config::{EcovisorBuilder, ExcessPolicy};
use crate::error::{EcovisorError, Result};
use crate::event::{Notification, NotifyConfig, OutboxPolicy};
use crate::federation::FedAppView;
use crate::lock;
use crate::proto::{EnergyRequest, EnergyResponse};
use crate::share::EnergyShare;
use crate::ves::{VesFlows, VesTotals, VirtualEnergySystem};

/// One application's shard: its state behind its own lock, so traffic
/// from different tenants executes in parallel.
pub(crate) type Shard = RwLock<AppState>;

/// Per-application state held by the ecovisor.
pub(crate) struct AppState {
    pub(crate) name: String,
    pub(crate) ves: VirtualEnergySystem,
    pub(crate) notify: NotifyConfig,
    pub(crate) outbox: OutboxPolicy,
    pub(crate) pending_events: Vec<Notification>,
    pub(crate) carbon_rate_limit: Option<CarbonRate>,
    pub(crate) carbon_budget: Option<Co2Grams>,
    /// Containers currently carrying an ecovisor-installed carbon cap,
    /// so enforcement can clear exactly what it installed when the rate
    /// limit lifts (or re-spread it as the container set changes).
    pub(crate) carbon_capped: Vec<ContainerId>,
    /// Edge-trigger state for [`Notification::BudgetExhausted`].
    pub(crate) budget_exhausted: bool,
}

/// System-wide flows settled in one tick (diagnostics/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SystemFlows {
    /// Physical solar output during the tick (buffered for next tick).
    pub physical_solar: Watts,
    /// Total grid import across apps.
    pub grid_import: Watts,
    /// Total battery charging across apps.
    pub battery_charge: Watts,
    /// Total battery discharge across apps.
    pub battery_discharge: Watts,
    /// Excess solar redistributed between apps.
    pub redistributed: Watts,
    /// Excess solar exported via net metering.
    pub exported: Watts,
    /// Excess solar curtailed.
    pub curtailed: Watts,
}

/// The ecovisor.
///
/// Fields fall into three locking domains (the invariants are spelled
/// out in `docs/ARCHITECTURE.md`):
///
/// * **per-app shards** (`apps`) — one `RwLock<AppState>` per tenant;
/// * **shared substrates** (`cop`, `tsdb`, `proto_trace`) — their own
///   locks, read-mostly on the dispatch path;
/// * **settlement-only state** (clock, physical components, intensity) —
///   plain fields, read freely from `&self` dispatch and mutated only
///   under `&mut self`, which the deployment wrapper
///   ([`crate::shard::ShardedEcovisor`]) grants exclusively.
pub struct Ecovisor {
    pub(crate) clock: TickClock,
    pub(crate) cop: RwLock<Cop>,
    solar: Box<dyn SolarSource>,
    pub(crate) physical_battery: Battery,
    pub(crate) grid: GridConnection,
    pub(crate) psu: ProgrammablePsu,
    carbon: Box<dyn CarbonService>,
    pub(crate) excess: ExcessPolicy,
    pub(crate) tsdb: RwLock<Tsdb>,
    pub(crate) apps: BTreeMap<AppId, Shard>,
    pub(crate) next_app: u32,
    pub(crate) intensity: CarbonIntensity,
    pub(crate) prev_intensity: CarbonIntensity,
    pub(crate) last_system_flows: SystemFlows,
    /// Fast-path flag mirroring `proto_trace.is_some()`, so untraced
    /// dispatch never touches the trace mutex.
    pub(crate) tracing: AtomicBool,
    /// Recorded protocol traffic, when tracing is enabled (see
    /// [`Ecovisor::enable_protocol_trace`]).
    pub(crate) proto_trace: Mutex<Option<crate::dispatch::ProtocolTrace>>,
    /// Observability hub, when one is attached (see
    /// [`Ecovisor::attach_obs`]). Write-only from the dispatch and
    /// settlement paths; never read back into protocol state.
    #[cfg(feature = "obs")]
    pub(crate) obs: Option<std::sync::Arc<crate::obs::ObsHub>>,
}

impl std::fmt::Debug for Ecovisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ecovisor")
            .field("tick", &self.clock.tick_index())
            .field("apps", &self.apps.len())
            .field("battery_soc", &self.physical_battery.soc_fraction())
            .finish_non_exhaustive()
    }
}

impl Ecovisor {
    /// Builds from an [`EcovisorBuilder`] (use [`EcovisorBuilder::build`]).
    pub fn from_builder(b: EcovisorBuilder) -> Self {
        let clock = TickClock::new(b.tick_interval);
        let intensity = b.carbon.current_intensity(clock.now());
        let psu = b.psu_or_default();
        Self {
            clock,
            cop: RwLock::new(Cop::new(b.cop)),
            solar: b.solar,
            physical_battery: b.battery,
            grid: b.grid,
            psu,
            carbon: b.carbon,
            excess: b.excess,
            tsdb: RwLock::new(Tsdb::new()),
            apps: BTreeMap::new(),
            next_app: 1,
            intensity,
            prev_intensity: intensity,
            last_system_flows: SystemFlows::default(),
            tracing: AtomicBool::new(false),
            proto_trace: Mutex::new(None),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Attaches an observability hub: dispatch, settlement, snapshot,
    /// and federation paths record into it from now on. With the `obs`
    /// feature disabled this is a no-op and every instrumentation site
    /// compiles out.
    pub fn attach_obs(&mut self, hub: std::sync::Arc<crate::obs::ObsHub>) {
        #[cfg(feature = "obs")]
        {
            self.obs = Some(hub);
        }
        #[cfg(not(feature = "obs"))]
        let _ = hub;
    }

    /// The attached observability hub, if any (always `None` with the
    /// `obs` feature disabled).
    pub fn obs_hub(&self) -> Option<std::sync::Arc<crate::obs::ObsHub>> {
        self.obs().cloned()
    }

    /// Internal accessor the instrumentation sites branch on; a constant
    /// `None` when the feature is off, so the branches fold away.
    #[inline]
    pub(crate) fn obs(&self) -> Option<&std::sync::Arc<crate::obs::ObsHub>> {
        #[cfg(feature = "obs")]
        {
            self.obs.as_ref()
        }
        #[cfg(not(feature = "obs"))]
        {
            None
        }
    }

    // ------------------------------------------------------------------
    // Registration & lookup
    // ------------------------------------------------------------------

    /// Registers an application with its exogenous energy share (§3.3).
    ///
    /// # Errors
    ///
    /// [`EcovisorError::InvalidShare`] when the share fails validation;
    /// [`EcovisorError::ShareExceeded`] when accepting it would
    /// oversubscribe the physical solar array or battery.
    pub fn register_app(&mut self, name: impl Into<String>, share: EnergyShare) -> Result<AppId> {
        share.validate().map_err(EcovisorError::InvalidShare)?;

        let solar_total: f64 = self
            .apps
            .values_mut()
            .map(|a| lock::get_mut(a).ves.share().solar_fraction)
            .sum::<f64>()
            + share.solar_fraction;
        if solar_total > 1.0 + 1e-9 {
            return Err(EcovisorError::ShareExceeded(format!(
                "solar fractions would sum to {solar_total:.3}"
            )));
        }
        let battery_total: WattHours = self
            .apps
            .values_mut()
            .map(|a| lock::get_mut(a).ves.share().battery_capacity)
            .sum::<WattHours>()
            + share.battery_capacity;
        if battery_total > self.physical_battery.spec().capacity {
            return Err(EcovisorError::ShareExceeded(format!(
                "battery capacity shares would sum to {battery_total}"
            )));
        }

        let id = AppId::new(self.next_app);
        self.next_app += 1;
        self.apps.insert(
            id,
            RwLock::new(AppState {
                name: name.into(),
                ves: VirtualEnergySystem::new(share),
                notify: NotifyConfig::default(),
                outbox: OutboxPolicy::default(),
                pending_events: Vec::new(),
                carbon_rate_limit: None,
                carbon_budget: None,
                carbon_capped: Vec::new(),
                budget_exhausted: false,
            }),
        );
        Ok(id)
    }

    /// Registered application ids, in registration order.
    pub fn app_ids(&self) -> Vec<AppId> {
        self.apps.keys().copied().collect()
    }

    /// An application's display name.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn app_name(&self, app: AppId) -> Result<String> {
        Ok(lock::read(self.shard(app)?).name.clone())
    }

    /// Overrides an application's notification thresholds.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn set_notify_config(&mut self, app: AppId, cfg: NotifyConfig) -> Result<()> {
        self.state_mut(app)?.notify = cfg;
        Ok(())
    }

    /// Overrides an application's bounded-outbox policy (see
    /// [`OutboxPolicy`] for the coalescing/eviction semantics).
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn set_outbox_policy(&mut self, app: AppId, policy: OutboxPolicy) -> Result<()> {
        self.state_mut(app)?.outbox = policy;
        Ok(())
    }

    /// An application's bounded-outbox policy.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn outbox_policy(&self, app: AppId) -> Result<OutboxPolicy> {
        Ok(lock::read(self.shard(app)?).outbox)
    }

    /// A scoped API handle for one application — the *compatibility
    /// façade*: each trait call translates into exactly one
    /// [`crate::proto::EnergyRequest`] dispatched immediately. New code
    /// should prefer [`Ecovisor::client`].
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn scoped(&mut self, app: AppId) -> Result<ScopedApi<'_>> {
        if !self.apps.contains_key(&app) {
            return Err(EcovisorError::UnknownApp(app));
        }
        Ok(ScopedApi { eco: self, app })
    }

    /// A batching protocol client for one application — the primary API
    /// handle (see [`crate::client::EcovisorClient`]).
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn client(&mut self, app: AppId) -> Result<crate::client::EcovisorClient<'_>> {
        if !self.apps.contains_key(&app) {
            return Err(EcovisorError::UnknownApp(app));
        }
        Ok(crate::client::EcovisorClient::new(self, app))
    }

    // ------------------------------------------------------------------
    // Tick protocol
    // ------------------------------------------------------------------

    /// Begins a tick: samples the carbon information service. Call before
    /// delivering `tick()` upcalls.
    pub fn begin_tick(&mut self) {
        self.intensity = self.carbon.current_intensity(self.clock.now());
    }

    /// Drains the notifications queued for an application (delivered at
    /// the start of its tick, before `on_tick`).
    ///
    /// Takes `&self`: the outbox lives in the app's shard, so draining
    /// joins the dispatch surface — any holder of a shared ecovisor
    /// (including the wire, via `PollEvents`) can consume events, not
    /// just the exclusive driver. Delivery is destructive and
    /// exactly-once: concurrent drains split the stream, they never
    /// duplicate it.
    pub fn drain_events(&self, app: AppId) -> Vec<Notification> {
        self.apps
            .get(&app)
            .map(|s| std::mem::take(&mut lock::write(s).pending_events))
            .unwrap_or_default()
    }

    /// Drains an application's outbox into a push-ready
    /// [`EventFrame`](crate::proto::EventFrame), stamped with the
    /// current (settlement) tick. `None` when no events are pending, so
    /// subscribers only ever receive non-empty frames.
    ///
    /// When protocol tracing is enabled the frame is recorded into
    /// [`ProtocolTrace::events`](crate::dispatch::ProtocolTrace), making
    /// push traffic part of the replayable record of a run. The
    /// transport's post-settlement broadcast hook is the canonical
    /// caller (see [`crate::shard::ShardedEcovisor::on_settlement`]).
    pub fn take_event_frame(&self, app: AppId) -> Option<crate::proto::EventFrame> {
        self.take_event_frame_matching(app, &crate::event::EventFilter::all())
    }

    /// Like [`take_event_frame`](Self::take_event_frame), but consumes
    /// **only** the events `filter` selects — the rest stay pending for
    /// other consumers (`drain_events` / `PollEvents`). The broadcast
    /// path calls this with the *union* of an app's subscriber filters,
    /// so an event no subscriber wants is never destroyed undelivered.
    pub fn take_event_frame_matching(
        &self,
        app: AppId,
        filter: &crate::event::EventFilter,
    ) -> Option<crate::proto::EventFrame> {
        let shard = self.apps.get(&app)?;
        let events = {
            let mut state = lock::write(shard);
            let (taken, kept): (Vec<Notification>, Vec<Notification>) = state
                .pending_events
                .drain(..)
                .partition(|e| filter.matches(e));
            state.pending_events = kept;
            taken
        };
        if events.is_empty() {
            return None;
        }
        let frame = crate::proto::EventFrame {
            version: crate::proto::PROTOCOL_VERSION,
            app,
            tick: self.clock.tick_index(),
            events,
        };
        if self.tracing.load(std::sync::atomic::Ordering::Relaxed) {
            if let Some(trace) = lock::lock(&self.proto_trace).as_mut() {
                trace.events.push(frame.clone());
            }
        }
        Some(frame)
    }

    /// Settles the current tick: enforces carbon-rate caps, runs the
    /// two-phase virtual settlement, multiplexes the battery, handles
    /// excess solar, mirrors aggregates onto the physical components,
    /// records telemetry, and buffers next-tick solar.
    ///
    /// Settlement is the **sole cross-app barrier**: it takes `&mut
    /// self`, so no dispatch (which needs `&self`) can overlap it, and
    /// the per-shard locks cost nothing here (`RwLock::get_mut`).
    pub fn settle_tick(&mut self) -> SystemFlows {
        let views = self.collect_demand();
        self.settle_with_views(&views)
            .expect("own demand views are complete and ordered")
    }

    /// Phase one of a settlement tick: enforces carbon-rate caps (they
    /// change container power under the current intensity) and captures
    /// one [`FedAppView`] per local tenant — its virtual energy system
    /// and post-cap container power, in app-id order.
    ///
    /// [`Self::settle_tick`] feeds the views straight back into
    /// [`Self::settle_with_views`]; a federation coordinator instead
    /// merges every node's views into one global list first. Between the
    /// two phases no dispatch may run (the deployment wrapper's
    /// `fed_collect`/`fed_settle` hold that contract), so the captured
    /// views stay equal to the live state they were cloned from.
    pub fn collect_demand(&mut self) -> Vec<FedAppView> {
        let dt = self.clock.interval();

        // 1. Enforce carbon-rate limits by converting them to container
        //    power caps under the current intensity (Table 2
        //    set_carbon_rate semantics).
        self.enforce_carbon_rates(dt);

        let cop = lock::get_mut(&mut self.cop);
        let mut views = Vec::with_capacity(self.apps.len());
        for (&id, shard) in self.apps.iter_mut() {
            let state = lock::get_mut(shard);
            views.push(FedAppView {
                app: id,
                ves: state.ves.clone(),
                power: cop.app_power(id),
            });
        }
        views
    }

    /// Phase two of a settlement tick: runs the global settlement
    /// arithmetic over `views` — local tenants against their live
    /// shards, remote tenants against **shadow** copies of the shipped
    /// state that are discarded when the tick ends.
    ///
    /// Every federated node receives the same app-id-ordered view list
    /// and applies the identical sums, throttle scales, and
    /// redistribution loop, so each replica's substrate state (grid
    /// meter, PSU, battery aggregates) stays bit-identical to a
    /// single-process run. Shadow apps contribute their flow numbers to
    /// the shared accumulators but skip notification, budget-edge,
    /// solar-buffer, and telemetry work — that happens on their owning
    /// node.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::Protocol`] when the views are not strictly
    /// ascending by app id or a locally registered app is missing; the
    /// tick is left unsettled and no state is modified.
    pub fn settle_with_views(&mut self, views: &[FedAppView]) -> Result<SystemFlows> {
        let now = self.clock.now();
        let dt = self.clock.interval();
        let intensity = self.intensity;

        if let Some(w) = views.windows(2).find(|w| w[1].app <= w[0].app) {
            return Err(EcovisorError::Protocol(format!(
                "demand views must be strictly ascending by app id \
                 (saw {} after {})",
                w[1].app, w[0].app
            )));
        }
        for &id in self.apps.keys() {
            if !views.iter().any(|v| v.app == id) {
                return Err(EcovisorError::Protocol(format!(
                    "demand views are missing local app {id}"
                )));
            }
        }

        // Shadows for remote apps: their shipped state runs through the
        // tick's arithmetic and is discarded at the end of this call.
        let mut shadows: BTreeMap<AppId, VirtualEnergySystem> = views
            .iter()
            .filter(|v| !self.apps.contains_key(&v.app))
            .map(|v| (v.app, v.ves.clone()))
            .collect();

        // 2. Desired flows per app, from post-cap container power. The
        //    captured views are authoritative for *both* local and
        //    remote apps — for locals they are clones of live state
        //    taken in [`Self::collect_demand`] with nothing allowed to
        //    run in between.
        let ids: Vec<AppId> = views.iter().map(|v| v.app).collect();
        let mut desired = BTreeMap::new();
        for view in views {
            desired.insert(view.app, view.ves.desired_flows(view.power, dt));
        }

        // 3. Aggregate throttle factors against the physical bank's rate
        //    limits (§3.3: "computing the limit on the maximum battery
        //    discharge rates and charging rates across all applications").
        //    SoC feasibility is enforced per virtual battery; Σ virtual
        //    capacity ≤ physical capacity guarantees the bank can honor
        //    whatever the virtual batteries accept.
        let total_charge: Watts = desired.values().map(|d| d.total_charge()).sum();
        let total_discharge: Watts = desired.values().map(|d| d.discharge).sum();
        let charge_allow = self.physical_battery.spec().max_charge_rate;
        let discharge_allow = self.physical_battery.spec().max_discharge_rate;
        let charge_scale = if total_charge > charge_allow {
            charge_allow / total_charge
        } else {
            1.0
        };
        let discharge_scale = if total_discharge > discharge_allow {
            discharge_allow / total_discharge
        } else {
            1.0
        };

        // 4. Commit per-app flows.
        let mut flows = BTreeMap::new();
        let mut surplus_pool = Watts::ZERO;
        let mut charge_applied = Watts::ZERO;
        let mut discharge_applied = Watts::ZERO;
        let mut grid_total = Watts::ZERO;
        for &id in &ids {
            let d = desired.get(&id).expect("computed");
            let Some(shard) = self.apps.get_mut(&id) else {
                // Shadow: same arithmetic, no side effects. Events and
                // budget edges fire on the owning node; only the flow
                // numbers feed the shared accumulators here.
                let ves = shadows.get_mut(&id).expect("shadow built");
                let (f, _events) = ves.apply_flows(d, charge_scale, discharge_scale, intensity, dt);
                surplus_pool += f.solar_surplus;
                charge_applied += f.solar_to_battery + f.grid_to_battery;
                discharge_applied += f.battery_to_load;
                grid_total += f.grid_import();
                flows.insert(id, f);
                continue;
            };
            let state = lock::get_mut(shard);
            let (f, events) =
                state
                    .ves
                    .apply_flows(d, charge_scale, discharge_scale, intensity, dt);
            let outbox = state.outbox;
            for event in events {
                outbox.push(&mut state.pending_events, event);
            }
            // Carbon-budget enforcement (Table 2 set_carbon_budget):
            // edge-triggered like battery full/empty — notify once at
            // the crossing and clamp grid allowance to zero until the
            // budget is cleared or raised.
            if let Some(budget) = state.carbon_budget {
                let carbon = state.ves.totals().carbon;
                if carbon >= budget && !state.budget_exhausted {
                    state.budget_exhausted = true;
                    state.ves.set_grid_clamp(true);
                    let outbox = state.outbox;
                    outbox.push(
                        &mut state.pending_events,
                        Notification::BudgetExhausted { budget, carbon },
                    );
                }
            }
            surplus_pool += f.solar_surplus;
            charge_applied += f.solar_to_battery + f.grid_to_battery;
            discharge_applied += f.battery_to_load;
            grid_total += f.grid_import();
            flows.insert(id, f);
        }

        // 5. Excess-solar policy.
        let mut redistributed = Watts::ZERO;
        let mut remaining_pool = surplus_pool;
        if self.excess == ExcessPolicy::Redistribute && remaining_pool > Watts::ZERO {
            let mut headroom = (charge_allow - charge_applied).max_zero();
            for &id in &ids {
                if remaining_pool <= Watts::ZERO || headroom <= Watts::ZERO {
                    break;
                }
                let offer = remaining_pool.min(headroom);
                let accepted = match self.apps.get_mut(&id) {
                    Some(shard) => lock::get_mut(shard).ves.accept_redistribution(offer, dt),
                    None => shadows
                        .get_mut(&id)
                        .expect("shadow built")
                        .accept_redistribution(offer, dt),
                };
                remaining_pool -= accepted;
                headroom -= accepted;
                redistributed += accepted;
                charge_applied += accepted;
            }
        }
        let exported = if self.excess == ExcessPolicy::NetMeter {
            self.grid.export(remaining_pool, dt)
        } else {
            Watts::ZERO
        };
        let curtailed = remaining_pool - exported;

        // 6. Mirror aggregates onto the physical meters. The bank's
        //    state of charge is *derived* from the virtual batteries
        //    (see [`Self::physical_battery_level`]); only the grid meter
        //    and PSU carry independent physical state.
        self.grid.import(grid_total, dt);
        self.psu.record_draw(now, grid_total, dt);

        // 7. Physical solar this tick, buffered per app for next tick;
        //    solar-change notifications compare old vs new availability.
        let physical_solar = self.solar.mean_power_over(now, now + dt);
        for &id in &ids {
            let Some(shard) = self.apps.get_mut(&id) else {
                continue; // remote: the owning node buffers its solar
            };
            let state = lock::get_mut(shard);
            let share = state.ves.share().solar_fraction;
            let new_buffer = physical_solar * share;
            let old_buffer = state.ves.solar_available();
            if state.notify.solar_significant(old_buffer, new_buffer) {
                let outbox = state.outbox;
                outbox.push(
                    &mut state.pending_events,
                    Notification::SolarChange {
                        previous: old_buffer,
                        current: new_buffer,
                    },
                );
            }
            state.ves.buffer_solar(new_buffer);
        }

        // 8. Carbon-change notifications (this tick vs previous tick).
        for &id in &ids {
            let Some(shard) = self.apps.get_mut(&id) else {
                continue; // remote: the owning node notifies
            };
            let state = lock::get_mut(shard);
            if state
                .notify
                .carbon_significant(self.prev_intensity, intensity)
            {
                let outbox = state.outbox;
                outbox.push(
                    &mut state.pending_events,
                    Notification::CarbonChange {
                        previous: self.prev_intensity,
                        current: intensity,
                    },
                );
            }
        }
        self.prev_intensity = intensity;

        let system = SystemFlows {
            physical_solar,
            grid_import: grid_total,
            battery_charge: charge_applied,
            battery_discharge: discharge_applied,
            redistributed,
            exported,
            curtailed,
        };
        self.last_system_flows = system;

        // 9. Telemetry — local tenants only; remote apps' rows are
        //    recorded by their owning node. Note the SYSTEM-subject
        //    rows derived from local state (app power, battery SoC) are
        //    node-local under federation; see docs/FEDERATION.md.
        flows.retain(|id, _| self.apps.contains_key(id));
        self.record_telemetry(now, &flows, &system);

        Ok(system)
    }

    /// Advances the tick clock. Call after [`settle_tick`](Self::settle_tick).
    pub fn advance_clock(&mut self) {
        self.clock.advance();
    }

    // ------------------------------------------------------------------
    // Observers
    // ------------------------------------------------------------------

    /// Start of the current tick.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The tick interval Δt.
    pub fn tick_interval(&self) -> SimDuration {
        self.clock.interval()
    }

    /// Index of the current tick.
    pub fn tick_index(&self) -> u64 {
        self.clock.tick_index()
    }

    /// Carbon intensity sampled at the start of the current tick.
    pub fn grid_carbon_intensity(&self) -> CarbonIntensity {
        self.intensity
    }

    /// The historical telemetry store (shared read guard — hold briefly;
    /// settlement writes telemetry under exclusive access).
    pub fn tsdb(&self) -> RwLockReadGuard<'_, Tsdb> {
        lock::read(&self.tsdb)
    }

    /// The container orchestration platform (shared read guard — hold
    /// briefly; container commands take the write side).
    pub fn cop(&self) -> RwLockReadGuard<'_, Cop> {
        lock::read(&self.cop)
    }

    /// The validation PSU (read-only).
    pub fn psu(&self) -> &ProgrammablePsu {
        &self.psu
    }

    /// Sets the PSU validation limit.
    pub fn set_psu_limit(&mut self, limit: Option<Watts>) {
        self.psu.set_limit(limit);
    }

    /// The physical battery bank (spec carrier; see
    /// [`Self::physical_battery_level`] for the live state).
    pub fn physical_battery(&self) -> &Battery {
        &self.physical_battery
    }

    /// Live energy stored in the physical bank: the sum of the virtual
    /// batteries' levels (unallocated capacity is inert).
    pub fn physical_battery_level(&self) -> WattHours {
        self.virtual_battery_total()
    }

    /// The grid connection (read-only).
    pub fn grid(&self) -> &GridConnection {
        &self.grid
    }

    /// The carbon information service (read-only).
    pub fn carbon_service(&self) -> &dyn CarbonService {
        self.carbon.as_ref()
    }

    /// System flows from the most recent settlement.
    pub fn last_system_flows(&self) -> &SystemFlows {
        &self.last_system_flows
    }

    /// An app's flows from the most recent settlement.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn app_flows(&self, app: AppId) -> Result<VesFlows> {
        Ok(*lock::read(self.shard(app)?).ves.last_flows())
    }

    /// An app's cumulative energy/carbon totals.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn app_totals(&self, app: AppId) -> Result<VesTotals> {
        Ok(*lock::read(self.shard(app)?).ves.totals())
    }

    /// A snapshot of an app's virtual energy system.
    ///
    /// # Errors
    ///
    /// [`EcovisorError::UnknownApp`] when not registered.
    pub fn app_ves(&self, app: AppId) -> Result<VirtualEnergySystem> {
        Ok(lock::read(self.shard(app)?).ves.clone())
    }

    /// Sum of all apps' virtual battery charge levels (invariant checks).
    pub fn virtual_battery_total(&self) -> WattHours {
        self.apps
            .values()
            .map(|s| lock::read(s).ves.battery_charge_level())
            .sum()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    pub(crate) fn shard(&self, app: AppId) -> Result<&Shard> {
        self.apps.get(&app).ok_or(EcovisorError::UnknownApp(app))
    }

    fn state_mut(&mut self, app: AppId) -> Result<&mut AppState> {
        self.apps
            .get_mut(&app)
            .map(lock::get_mut)
            .ok_or(EcovisorError::UnknownApp(app))
    }

    /// Converts each app's carbon-rate limit into per-container **carbon
    /// caps** under the current intensity. Zero-carbon supply (available
    /// solar plus allowed battery discharge) is exempt from the cap.
    ///
    /// Carbon caps are a separate component from the caps applications
    /// set through `set_container_powercap` — the COP enforces the `min`
    /// of the two — and are cleared and re-installed every settlement,
    /// so lifting the rate limit (`set_carbon_rate(None)`) restores the
    /// containers' own caps on the next tick, and the per-container
    /// spread tracks the live container set.
    fn enforce_carbon_rates(&mut self, dt: SimDuration) {
        let intensity = self.intensity.grams_per_kwh().max(1e-9);
        let cop = lock::get_mut(&mut self.cop);
        for (&id, shard) in self.apps.iter_mut() {
            let state = lock::get_mut(shard);
            // Clear last tick's installation (containers may have
            // stopped; the rate limit may be gone; intensity changed).
            for c in std::mem::take(&mut state.carbon_capped) {
                let _ = cop.set_carbon_cap(c, None);
            }
            let Some(rate) = state.carbon_rate_limit else {
                continue;
            };
            let battery_ok = state
                .ves
                .battery()
                .map(|b| b.max_discharge_power(dt).min(state.ves.max_discharge()))
                .unwrap_or(Watts::ZERO);
            let zero_carbon = state.ves.solar_available() + battery_ok;
            // rate (g/s) allows P watts of grid power where
            // P × intensity / 3.6e6 = rate  =>  P = rate × 3.6e6 / intensity.
            let grid_allowance = Watts::new(rate.grams_per_sec() * 3.6e6 / intensity);
            let total_allowed = zero_carbon + grid_allowance;
            let running: Vec<ContainerId> = cop
                .containers_of(id)
                .iter()
                .filter(|c| c.state() == ContainerState::Running)
                .map(|c| c.id())
                .collect();
            if running.is_empty() {
                continue;
            }
            let per_container = total_allowed / running.len() as f64;
            for &c in &running {
                let _ = cop.set_carbon_cap(c, Some(per_container));
            }
            state.carbon_capped = running;
        }
    }

    fn record_telemetry(
        &mut self,
        now: SimTime,
        flows: &BTreeMap<AppId, VesFlows>,
        system: &SystemFlows,
    ) {
        let battery_total = self.virtual_battery_total();
        let phys_capacity = self.physical_battery.spec().capacity;
        let intensity = self.intensity;
        let tsdb = lock::get_mut(&mut self.tsdb);
        let cop = lock::get_mut(&mut self.cop);

        // System-wide series.
        tsdb.record(
            metrics::GRID_CARBON_INTENSITY,
            metrics::SYSTEM,
            now,
            intensity.grams_per_kwh(),
        );
        tsdb.record(
            metrics::SOLAR_POWER,
            metrics::SYSTEM,
            now,
            system.physical_solar.watts(),
        );
        tsdb.record(
            metrics::GRID_POWER,
            metrics::SYSTEM,
            now,
            system.grid_import.watts(),
        );
        tsdb.record(
            metrics::APP_POWER,
            metrics::SYSTEM,
            now,
            cop.total_power().watts(),
        );
        tsdb.record(
            metrics::BATTERY_SOC,
            metrics::SYSTEM,
            now,
            battery_total / phys_capacity,
        );
        tsdb.record(
            metrics::SOLAR_CURTAILED,
            metrics::SYSTEM,
            now,
            system.curtailed.watts(),
        );

        // Per-app and per-container series.
        for (&id, f) in flows {
            let subject = id.to_string();
            let state = lock::read(self.apps.get(&id).expect("registered"));
            let app_power = f.demand;
            // APP_POWER records *served* power (demand minus load shed by
            // the grid cap), so its TSDB integral — get_app_energy —
            // agrees with VesTotals::energy, which accumulates served
            // power. Demand stays the denominator for the proportional
            // carbon attribution below (container powers sum to demand).
            let served = (f.demand - f.unmet_demand).max_zero();
            tsdb.record(metrics::APP_POWER, &subject, now, served.watts());
            tsdb.record(metrics::GRID_POWER, &subject, now, f.grid_import().watts());
            tsdb.record(
                metrics::SOLAR_POWER,
                &subject,
                now,
                f.solar_available.watts(),
            );
            tsdb.record(
                metrics::BATTERY_DISCHARGE,
                &subject,
                now,
                f.battery_to_load.watts(),
            );
            tsdb.record(
                metrics::BATTERY_CHARGE,
                &subject,
                now,
                (f.solar_to_battery + f.grid_to_battery + f.redistributed_in).watts(),
            );
            tsdb.record(
                metrics::BATTERY_LEVEL,
                &subject,
                now,
                state.ves.battery_charge_level().watt_hours(),
            );
            tsdb.record(metrics::BATTERY_SOC, &subject, now, state.ves.battery_soc());
            tsdb.record(
                metrics::CARBON_RATE,
                &subject,
                now,
                f.carbon_rate.grams_per_sec(),
            );
            tsdb.record(
                metrics::CARBON_TOTAL,
                &subject,
                now,
                state.ves.totals().carbon.grams(),
            );
            tsdb.record(
                metrics::CONTAINER_COUNT,
                &subject,
                now,
                cop.running_count(id) as f64,
            );

            // Containers: power + proportional carbon attribution.
            let containers = cop.container_ids_of(id);
            for c in containers {
                let power = cop.container_power(c).unwrap_or(Watts::ZERO);
                let c_subject = c.to_string();
                tsdb.record(metrics::CONTAINER_POWER, &c_subject, now, power.watts());
                let share = if app_power > Watts::ZERO {
                    power / app_power
                } else {
                    0.0
                };
                tsdb.record(
                    metrics::CARBON_RATE,
                    &c_subject,
                    now,
                    f.carbon_rate.grams_per_sec() * share,
                );
            }
        }
    }
}

// Builder glue: keep the builder free of psu details.
impl EcovisorBuilder {
    pub(crate) fn psu_or_default(&self) -> ProgrammablePsu {
        ProgrammablePsu::new()
    }
}

/// A Table 1 + Table 2 API handle scoped to one application.
///
/// Obtained from [`Ecovisor::scoped`]. Since the protocol redesign this
/// is a **thin compatibility façade**: every trait method builds the
/// corresponding [`crate::proto::EnergyRequest`] and routes it through
/// the one dispatch hot path ([`Ecovisor::dispatch`] /
/// [`Ecovisor::dispatch_query`]), then translates the
/// [`crate::proto::EnergyResponse`] back into the old signature. Scope is
/// therefore enforced in exactly one place for both API styles, so one
/// tenant cannot observe or control another tenant's containers or
/// virtual energy system.
pub struct ScopedApi<'a> {
    eco: &'a mut Ecovisor,
    app: AppId,
}

impl std::fmt::Debug for ScopedApi<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedApi").field("app", &self.app).finish()
    }
}

impl ScopedApi<'_> {
    /// Routes a command through the dispatch hot path.
    fn command(&mut self, request: EnergyRequest) -> EnergyResponse {
        self.eco.dispatch(self.app, &request)
    }

    /// Routes a query through the read-only dispatch path.
    fn query(&self, request: EnergyRequest) -> EnergyResponse {
        self.eco.dispatch_query(self.app, &request)
    }
}

impl EcovisorApi for ScopedApi<'_> {
    fn set_container_powercap(&mut self, container: ContainerId, cap: Watts) -> Result<()> {
        self.command(EnergyRequest::SetContainerPowercap { container, cap })
            .unit()
    }

    fn clear_container_powercap(&mut self, container: ContainerId) -> Result<()> {
        self.command(EnergyRequest::ClearContainerPowercap { container })
            .unit()
    }

    fn set_battery_charge_rate(&mut self, rate: Watts) {
        self.command(EnergyRequest::SetBatteryChargeRate { rate })
            .unit()
            .expect("infallible setter");
    }

    fn set_battery_max_discharge(&mut self, rate: Watts) {
        self.command(EnergyRequest::SetBatteryMaxDischarge { rate })
            .unit()
            .expect("infallible setter");
    }

    fn get_solar_power(&self) -> Watts {
        self.query(EnergyRequest::GetSolarPower).expect_power()
    }

    fn get_grid_power(&self) -> Watts {
        self.query(EnergyRequest::GetGridPower).expect_power()
    }

    fn get_grid_carbon(&self) -> CarbonIntensity {
        self.query(EnergyRequest::GetGridCarbon).expect_intensity()
    }

    fn get_battery_discharge_rate(&self) -> Watts {
        self.query(EnergyRequest::GetBatteryDischargeRate)
            .expect_power()
    }

    fn get_battery_charge_level(&self) -> WattHours {
        self.query(EnergyRequest::GetBatteryChargeLevel)
            .expect_energy()
    }

    fn get_container_powercap(&self, container: ContainerId) -> Result<Option<Watts>> {
        self.query(EnergyRequest::GetContainerPowercap { container })
            .power_cap()
    }

    fn get_container_power(&self, container: ContainerId) -> Result<Watts> {
        self.query(EnergyRequest::GetContainerPower { container })
            .power()
    }

    fn launch_container(&mut self, spec: ContainerSpec) -> Result<ContainerId> {
        self.command(EnergyRequest::LaunchContainer { spec })
            .container()
    }

    fn stop_container(&mut self, container: ContainerId) -> Result<()> {
        self.command(EnergyRequest::StopContainer { container })
            .unit()
    }

    fn suspend_container(&mut self, container: ContainerId) -> Result<()> {
        self.command(EnergyRequest::SuspendContainer { container })
            .unit()
    }

    fn resume_container(&mut self, container: ContainerId) -> Result<()> {
        self.command(EnergyRequest::ResumeContainer { container })
            .unit()
    }

    fn set_container_demand(&mut self, container: ContainerId, demand: f64) -> Result<()> {
        self.command(EnergyRequest::SetContainerDemand { container, demand })
            .unit()
    }

    fn container_ids(&self) -> Vec<ContainerId> {
        self.query(EnergyRequest::ListContainers)
            .expect_containers()
    }

    fn running_containers(&self) -> usize {
        self.query(EnergyRequest::CountRunningContainers)
            .expect_count()
    }

    fn effective_cores(&self) -> f64 {
        self.query(EnergyRequest::GetEffectiveCores).expect_cores()
    }

    fn container_effective_cores(&self, container: ContainerId) -> Result<f64> {
        self.query(EnergyRequest::GetContainerEffectiveCores { container })
            .cores()
    }

    fn now(&self) -> SimTime {
        self.query(EnergyRequest::GetTime).expect_time()
    }

    fn tick_interval(&self) -> SimDuration {
        self.query(EnergyRequest::GetTickInterval).expect_interval()
    }

    fn app_id(&self) -> AppId {
        self.app
    }
}

impl LibraryApi for ScopedApi<'_> {
    fn get_container_energy(
        &self,
        container: ContainerId,
        from: SimTime,
        to: SimTime,
    ) -> Result<WattHours> {
        self.query(EnergyRequest::GetContainerEnergy {
            container,
            from,
            to,
        })
        .energy()
    }

    fn get_container_carbon(
        &self,
        container: ContainerId,
        from: SimTime,
        to: SimTime,
    ) -> Result<Co2Grams> {
        self.query(EnergyRequest::GetContainerCarbon {
            container,
            from,
            to,
        })
        .carbon()
    }

    fn get_app_power(&self) -> Watts {
        self.query(EnergyRequest::GetAppPower).expect_power()
    }

    fn get_app_energy(&self, from: SimTime, to: SimTime) -> WattHours {
        self.query(EnergyRequest::GetAppEnergy { from, to })
            .expect_energy()
    }

    fn get_app_carbon(&self) -> Co2Grams {
        self.query(EnergyRequest::GetAppCarbon).expect_carbon()
    }

    fn get_app_carbon_between(&self, from: SimTime, to: SimTime) -> Co2Grams {
        self.query(EnergyRequest::GetAppCarbonBetween { from, to })
            .expect_carbon()
    }

    fn set_carbon_rate(&mut self, rate: Option<CarbonRate>) {
        self.command(EnergyRequest::SetCarbonRate { rate })
            .unit()
            .expect("infallible setter");
    }

    fn carbon_rate_limit(&self) -> Option<CarbonRate> {
        self.query(EnergyRequest::GetCarbonRateLimit)
            .expect_rate_limit()
    }

    fn set_carbon_budget(&mut self, budget: Option<Co2Grams>) {
        self.command(EnergyRequest::SetCarbonBudget { budget })
            .unit()
            .expect("infallible setter");
    }

    fn carbon_budget(&self) -> Option<Co2Grams> {
        self.query(EnergyRequest::GetCarbonBudget).expect_budget()
    }

    fn remaining_carbon_budget(&self) -> Option<Co2Grams> {
        self.query(EnergyRequest::GetRemainingCarbonBudget)
            .expect_budget()
    }
}
