//! Per-application energy shares.
//!
//! Paper §3.3: "We assume an exogenous policy determines each
//! application's share of grid power, the physical solar array's variable
//! power output, and the physical battery's energy and power capacity."
//! [`EnergyShare`] is that exogenous allocation; the ecovisor validates at
//! registration time that the physical system is not oversubscribed.

use serde::{Deserialize, Serialize};

use energy_system::battery::BatterySpec;
use simkit::units::{WattHours, Watts};

/// One application's slice of the physical energy system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyShare {
    /// Fraction of the physical solar array's output in `[0, 1]`.
    pub solar_fraction: f64,
    /// Virtual battery capacity carved out of the physical bank.
    pub battery_capacity: WattHours,
    /// Initial virtual-battery state of charge as a fraction of its
    /// capacity (clamped to the battery floor at construction).
    pub battery_initial_soc: f64,
    /// Optional per-application cap on grid power draw.
    pub grid_power_cap: Option<Watts>,
}

impl EnergyShare {
    /// A share with no solar and no battery: grid-only applications
    /// (the §5.1/§5.2 experiments).
    pub fn grid_only() -> Self {
        Self {
            solar_fraction: 0.0,
            battery_capacity: WattHours::ZERO,
            battery_initial_soc: 1.0,
            grid_power_cap: None,
        }
    }

    /// An equal 1/n share of solar and battery.
    pub fn equal_split(n: u32, physical_battery: WattHours) -> Self {
        let n = f64::from(n.max(1));
        Self {
            solar_fraction: 1.0 / n,
            battery_capacity: physical_battery / n,
            battery_initial_soc: 1.0,
            grid_power_cap: None,
        }
    }

    /// Builder-style: sets the solar fraction.
    pub fn with_solar_fraction(mut self, fraction: f64) -> Self {
        self.solar_fraction = fraction;
        self
    }

    /// Builder-style: sets the battery capacity share.
    pub fn with_battery(mut self, capacity: WattHours) -> Self {
        self.battery_capacity = capacity;
        self
    }

    /// Builder-style: sets the initial state of charge.
    pub fn with_initial_soc(mut self, soc: f64) -> Self {
        self.battery_initial_soc = soc;
        self
    }

    /// Builder-style: caps grid power.
    pub fn with_grid_cap(mut self, cap: Watts) -> Self {
        self.grid_power_cap = Some(cap);
        self
    }

    /// Whether this share includes any battery capacity.
    pub fn has_battery(&self) -> bool {
        self.battery_capacity > WattHours::ZERO
    }

    /// The virtual battery spec for this share: capacity scaled, same
    /// C-rates and floor as the physical prototype bank.
    pub fn virtual_battery_spec(&self) -> BatterySpec {
        BatterySpec::with_capacity(self.battery_capacity)
    }

    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.solar_fraction) {
            return Err(format!(
                "solar fraction {} outside [0, 1]",
                self.solar_fraction
            ));
        }
        if self.battery_capacity < WattHours::ZERO {
            return Err("battery capacity must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.battery_initial_soc) {
            return Err("initial SoC must be in [0, 1]".into());
        }
        if let Some(cap) = self.grid_power_cap {
            if cap < Watts::ZERO {
                return Err("grid power cap must be non-negative".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_only_share() {
        let s = EnergyShare::grid_only();
        assert!(s.validate().is_ok());
        assert!(!s.has_battery());
        assert_eq!(s.solar_fraction, 0.0);
    }

    #[test]
    fn equal_split_shares() {
        let s = EnergyShare::equal_split(2, WattHours::new(1440.0));
        assert!(s.validate().is_ok());
        assert_eq!(s.solar_fraction, 0.5);
        assert_eq!(s.battery_capacity, WattHours::new(720.0));
        assert!(s.has_battery());
    }

    #[test]
    fn virtual_battery_inherits_c_rates() {
        let s = EnergyShare::grid_only().with_battery(WattHours::new(400.0));
        let spec = s.virtual_battery_spec();
        assert_eq!(spec.capacity, WattHours::new(400.0));
        assert_eq!(spec.max_charge_rate, Watts::new(100.0)); // 0.25C
        assert_eq!(spec.max_discharge_rate, Watts::new(400.0)); // 1C
        assert!((spec.min_soc_fraction - 0.30).abs() < 1e-12);
    }

    #[test]
    fn builders_compose() {
        let s = EnergyShare::grid_only()
            .with_solar_fraction(0.4)
            .with_battery(WattHours::new(100.0))
            .with_initial_soc(0.5)
            .with_grid_cap(Watts::new(50.0));
        assert!(s.validate().is_ok());
        assert_eq!(s.solar_fraction, 0.4);
        assert_eq!(s.grid_power_cap, Some(Watts::new(50.0)));
    }

    #[test]
    fn invalid_shares_rejected() {
        assert!(EnergyShare::grid_only()
            .with_solar_fraction(1.5)
            .validate()
            .is_err());
        assert!(EnergyShare::grid_only()
            .with_initial_soc(2.0)
            .validate()
            .is_err());
        assert!(EnergyShare::grid_only()
            .with_grid_cap(Watts::new(-1.0))
            .validate()
            .is_err());
    }
}
