//! The simulation runner: drives the ecovisor tick protocol.
//!
//! [`Simulation`] owns an [`Ecovisor`] and the registered
//! [`Application`]s and advances them in lock-step. Each tick it:
//!
//! 1. samples the carbon service ([`Ecovisor::begin_tick`]);
//! 2. delivers pending notifications and the `tick()` upcall to every
//!    application, in registration order, through an [`EcovisorClient`]
//!    protocol handle so applications can only touch their own virtual
//!    energy system and their fire-and-forget commands coalesce into
//!    per-tick request batches;
//! 3. flushes each application's outstanding batch at the tick boundary;
//! 4. settles energy and carbon ([`Ecovisor::settle_tick`]);
//! 5. advances the clock.
//!
//! [`EcovisorClient`]: crate::client::EcovisorClient

use container_cop::AppId;
use simkit::time::SimDuration;

use crate::app::Application;
use crate::client::EnergyClient;
use crate::ecovisor::Ecovisor;
use crate::error::Result;
use crate::share::EnergyShare;

struct Entry {
    id: AppId,
    app: Box<dyn Application>,
}

/// Lock-step driver for an ecovisor and its applications.
pub struct Simulation {
    eco: Ecovisor,
    entries: Vec<Entry>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("apps", &self.entries.len())
            .field("tick", &self.eco.tick_index())
            .finish()
    }
}

impl Simulation {
    /// Wraps an ecovisor.
    pub fn new(eco: Ecovisor) -> Self {
        Self {
            eco,
            entries: Vec::new(),
        }
    }

    /// Registers an application with its energy share and runs its
    /// `on_start` hook.
    ///
    /// # Errors
    ///
    /// Propagates registration failures (invalid or oversubscribed
    /// shares).
    pub fn add_app(
        &mut self,
        name: &str,
        share: EnergyShare,
        mut app: Box<dyn Application>,
    ) -> Result<AppId> {
        let id = self.eco.register_app(name, share)?;
        {
            let mut api = self.eco.client(id)?;
            app.on_start(&mut api);
            // `api` drops here, flushing anything still queued.
        }
        self.entries.push(Entry { id, app });
        Ok(id)
    }

    /// Runs one tick of the protocol.
    pub fn step(&mut self) {
        self.eco.begin_tick();
        for entry in &mut self.entries {
            let events = self.eco.drain_events(entry.id);
            let mut api = self.eco.client(entry.id).expect("registered app");
            for event in &events {
                entry.app.on_event(event, &mut api);
            }
            entry.app.on_tick(&mut api);
            // Tick boundary: whatever the app queued settles as one batch.
            api.flush();
        }
        self.eco.settle_tick();
        self.eco.advance_clock();
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs for a span of simulated time (rounded up to whole ticks).
    pub fn run_for(&mut self, span: SimDuration) {
        let dt = self.eco.tick_interval().as_secs();
        let n = span.as_secs().div_ceil(dt);
        self.run_ticks(n);
    }

    /// Runs until every application reports done, or `max_ticks` elapse.
    /// Returns the number of ticks executed.
    pub fn run_until_done(&mut self, max_ticks: u64) -> u64 {
        let mut executed = 0;
        while executed < max_ticks && !self.all_done() {
            self.step();
            executed += 1;
        }
        executed
    }

    /// `true` when every registered application is done.
    pub fn all_done(&self) -> bool {
        !self.entries.is_empty() && self.entries.iter().all(|e| e.app.is_done())
    }

    /// Whether one application is done.
    pub fn is_done(&self, id: AppId) -> bool {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.app.is_done())
            .unwrap_or(false)
    }

    /// The underlying ecovisor.
    pub fn eco(&self) -> &Ecovisor {
        &self.eco
    }

    /// Mutable access to the ecovisor (experiment harness hooks).
    pub fn eco_mut(&mut self) -> &mut Ecovisor {
        &mut self.eco
    }

    /// Registered app ids in registration order.
    pub fn app_ids(&self) -> Vec<AppId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Access a registered application by id (for post-run inspection).
    pub fn app(&self, id: AppId) -> Option<&dyn Application> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.app.as_ref())
    }
}
