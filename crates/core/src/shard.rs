//! The sharded deployment wrapper: parallel dispatch, exclusive
//! settlement.
//!
//! [`ShardedEcovisor`] is the shape an [`Ecovisor`] takes when several
//! threads drive it at once — the transport's thread-per-connection
//! servers, multi-tenant simulations, and the multithreaded benches all
//! share one through an `Arc`. It layers two levels of locking:
//!
//! 1. an **outer** `RwLock<Ecovisor>`: every dispatch holds the *read*
//!    side (so any number of tenant batches execute concurrently), while
//!    the driver's settlement path ([`ShardedEcovisor::with`] /
//!    [`ShardedEcovisor::tick`]) takes the *write* side — a brief
//!    stop-the-world quiesce that is **the only cross-app barrier**;
//! 2. the **inner** per-app shard locks (see [`crate::ecovisor`]): under
//!    the outer read guard, a batch locks only the shard of the app it
//!    addresses, so traffic from different tenants never contends, and
//!    query-only traffic takes shard *read* locks so even same-app
//!    queries run in parallel.
//!
//! The resulting invariants (spelled out in `docs/ARCHITECTURE.md`):
//!
//! * between settlements, state from different apps is updated
//!   independently and concurrently — no dispatch observes another
//!   shard's lock;
//! * a settlement observes no in-flight batches (outer write lock) and
//!   pays nothing for the inner locks (`&mut` access);
//! * replaying the recorded [`ProtocolTrace`](crate::dispatch::ProtocolTrace)
//!   of a concurrent run single-threaded settles identical totals,
//!   because batches from different apps commute between barriers.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ecovisor::proto::{EnergyRequest, RequestBatch};
//! use ecovisor::{EcovisorBuilder, EnergyShare, ShardedEcovisor};
//!
//! let mut eco = EcovisorBuilder::new().build();
//! let app = eco.register_app("tenant", EnergyShare::grid_only()).unwrap();
//! let shared = Arc::new(ShardedEcovisor::new(eco));
//!
//! // Any number of threads may dispatch concurrently…
//! let worker = {
//!     let shared = Arc::clone(&shared);
//!     std::thread::spawn(move || {
//!         let batch = RequestBatch::new(app, vec![EnergyRequest::GetSolarPower]);
//!         shared.dispatch_batch(&batch)
//!     })
//! };
//! // …while the driver ticks settlement between batches.
//! shared.tick();
//! assert!(!worker.join().unwrap().responses.is_empty());
//! ```

use std::sync::{Mutex, RwLock};

use container_cop::AppId;

use crate::ecovisor::{Ecovisor, SystemFlows};
use crate::lock;
use crate::proto::{EnergyRequest, EnergyResponse, RequestBatch, ResponseBatch};

/// A post-settlement broadcast hook (see
/// [`ShardedEcovisor::on_settlement`]).
type SettlementHook = Box<dyn Fn(&Ecovisor) + Send + Sync>;

/// An [`Ecovisor`] wrapped for concurrent multi-tenant dispatch.
///
/// Dispatch methods take `&self` and run under the outer read lock;
/// [`with`](Self::with) grants the exclusive access settlement and
/// registration need. Share between threads with `Arc` (the transport's
/// [`SharedEcovisor`](crate::transport::SharedEcovisor) alias).
pub struct ShardedEcovisor {
    inner: RwLock<Ecovisor>,
    /// Hooks run by [`tick`](Self::tick) after settlement, still inside
    /// the barrier — the server-push fan-out point.
    hooks: Mutex<Vec<SettlementHook>>,
}

impl std::fmt::Debug for ShardedEcovisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEcovisor").finish_non_exhaustive()
    }
}

impl ShardedEcovisor {
    /// Wraps an ecovisor for shared use.
    pub fn new(eco: Ecovisor) -> Self {
        Self {
            inner: RwLock::new(eco),
            hooks: Mutex::new(Vec::new()),
        }
    }

    /// Registers a **post-settlement broadcast hook**: [`tick`](Self::tick)
    /// runs every hook after `settle_tick`, *before* the clock advances
    /// and while still holding the settlement barrier. That placement is
    /// the push-path contract:
    ///
    /// * events a hook takes ([`Ecovisor::take_event_frame`]) are
    ///   stamped with the settlement tick that produced them, and
    /// * no dispatch (e.g. a racing `PollEvents`) can drain an outbox
    ///   between settlement and broadcast, so a subscriber observes the
    ///   exact per-settlement event sequence.
    ///
    /// Hooks must confine themselves to the `&Ecovisor` they are given —
    /// calling back into this wrapper's dispatch surface from a hook
    /// would self-deadlock on the outer lock. The TCP transport installs
    /// one hook per server to fan event frames out to subscribed
    /// connections (see [`crate::transport`]).
    pub fn on_settlement(&self, hook: impl Fn(&Ecovisor) + Send + Sync + 'static) {
        lock::lock(&self.hooks).push(Box::new(hook));
    }

    /// Executes a request batch under the outer read lock: concurrent
    /// with every other dispatch, excluded only by settlement. See
    /// [`Ecovisor::dispatch_batch`] for the per-shard locking.
    pub fn dispatch_batch(&self, batch: &RequestBatch) -> ResponseBatch {
        lock::read(&self.inner).dispatch_batch(batch)
    }

    /// Executes one read-only request under the outer read lock.
    pub fn dispatch_query(&self, app: AppId, request: &EnergyRequest) -> EnergyResponse {
        lock::read(&self.inner).dispatch_query(app, request)
    }

    /// Runs `f` with exclusive access — the **settlement barrier**. The
    /// driver loop uses this for `begin_tick`/`settle_tick`/
    /// `advance_clock`, registration, and trace extraction; all dispatch
    /// quiesces for the duration.
    pub fn with<R>(&self, f: impl FnOnce(&mut Ecovisor) -> R) -> R {
        f(&mut lock::write(&self.inner))
    }

    /// Runs `f` with shared access, concurrent with dispatch (e.g. for
    /// telemetry reads mid-run).
    pub fn read<R>(&self, f: impl FnOnce(&Ecovisor) -> R) -> R {
        f(&lock::read(&self.inner))
    }

    /// Advances one full tick — `begin_tick`, `settle_tick`, broadcast
    /// hooks, `advance_clock` — under the settlement barrier, returning
    /// the settled system flows.
    pub fn tick(&self) -> SystemFlows {
        // Two observability series bracket the barrier: how long the
        // driver waited for dispatch to quiesce (`settle.barrier_wait_ns`)
        // and how long settlement held everyone up (`settle.duration_ns`).
        // Readings go only into the hub — never into settlement inputs.
        let barrier_start = std::time::Instant::now();
        let mut eco = lock::write(&self.inner);
        let obs = eco.obs_hub();
        if let Some(hub) = &obs {
            hub.core
                .barrier_wait
                .record_duration(barrier_start.elapsed());
        }
        let settle_start = std::time::Instant::now();
        eco.begin_tick();
        let flows = eco.settle_tick();
        for hook in lock::lock(&self.hooks).iter() {
            hook(&eco);
        }
        eco.advance_clock();
        if let Some(hub) = &obs {
            hub.core
                .settle_duration
                .record_duration(settle_start.elapsed());
            hub.core.tick.set(eco.tick_index() as i64);
        }
        flows
    }

    /// Phase one of a **federated** tick: samples the tick inputs and
    /// captures the local tenants' demand views under the settlement
    /// barrier (see [`Ecovisor::collect_demand`]).
    ///
    /// The coordinator contract: between this call and the matching
    /// [`fed_settle`](Self::fed_settle) no dispatch may be allowed to
    /// mutate tenant state — on a deployed node that means the
    /// coordinator drives both phases back-to-back and tenants' writes
    /// in between are their own lookout only if the operator breaks the
    /// choreography. `docs/FEDERATION.md` spells this out.
    pub fn fed_collect(&self) -> Vec<crate::federation::FedAppView> {
        let barrier_start = std::time::Instant::now();
        let mut eco = lock::write(&self.inner);
        let obs = eco.obs_hub();
        if let Some(hub) = &obs {
            hub.core
                .barrier_wait
                .record_duration(barrier_start.elapsed());
        }
        let start = std::time::Instant::now();
        eco.begin_tick();
        let views = eco.collect_demand();
        if let Some(hub) = &obs {
            hub.core.fed_collect.record_duration(start.elapsed());
        }
        views
    }

    /// Phase two of a federated tick: settles the globally merged view
    /// list, runs the broadcast hooks, and advances the clock — the
    /// cross-node extension of [`tick`](Self::tick).
    ///
    /// # Errors
    ///
    /// Everything [`Ecovisor::settle_with_views`] rejects; on error the
    /// hooks do not run and the clock does not advance, so a node that
    /// received a malformed view list stays at the unsettled tick.
    pub fn fed_settle(
        &self,
        views: &[crate::federation::FedAppView],
    ) -> crate::error::Result<SystemFlows> {
        let barrier_start = std::time::Instant::now();
        let mut eco = lock::write(&self.inner);
        let obs = eco.obs_hub();
        if let Some(hub) = &obs {
            hub.core
                .barrier_wait
                .record_duration(barrier_start.elapsed());
        }
        let start = std::time::Instant::now();
        let flows = eco.settle_with_views(views)?;
        for hook in lock::lock(&self.hooks).iter() {
            hook(&eco);
        }
        eco.advance_clock();
        if let Some(hub) = &obs {
            hub.core.fed_settle.record_duration(start.elapsed());
            hub.core.tick.set(eco.tick_index() as i64);
        }
        Ok(flows)
    }

    /// Captures one tenant under the settlement barrier (see
    /// [`Ecovisor::extract_app`]); the tenant keeps running here until
    /// [`remove_app`](Self::remove_app) commits the migration.
    ///
    /// # Errors
    ///
    /// [`crate::EcovisorError::UnknownApp`] when not registered.
    pub fn extract_app(
        &self,
        app: AppId,
    ) -> crate::error::Result<crate::federation::TenantSnapshot> {
        self.with(|eco| eco.extract_app(app))
    }

    /// Grafts a migrated tenant under the settlement barrier (see
    /// [`Ecovisor::graft_app`] for validation; on error nothing
    /// changes).
    ///
    /// # Errors
    ///
    /// Everything [`Ecovisor::graft_app`] rejects.
    pub fn graft_app(
        &self,
        snap: &crate::federation::TenantSnapshot,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.with(|eco| eco.graft_app(snap))
    }

    /// Evicts a tenant under the settlement barrier (see
    /// [`Ecovisor::remove_app`]) — the migration commit on the source
    /// node.
    ///
    /// # Errors
    ///
    /// [`crate::EcovisorError::UnknownApp`] when not registered.
    pub fn remove_app(&self, app: AppId) -> crate::error::Result<()> {
        self.with(|eco| eco.remove_app(app))
    }

    /// Captures a [`Snapshot`](crate::snapshot::Snapshot) under the
    /// settlement barrier: all dispatch quiesces, so the checkpoint can
    /// never observe a half-settled tick or a half-applied batch.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        self.with(|eco| eco.snapshot())
    }

    /// Reinstates a snapshot under the settlement barrier (see
    /// [`Ecovisor::apply_snapshot`] for validation and error semantics).
    ///
    /// # Errors
    ///
    /// Everything [`Ecovisor::apply_snapshot`] rejects; on error the
    /// running state is untouched.
    pub fn apply_snapshot(
        &self,
        snap: &crate::snapshot::Snapshot,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.with(|eco| eco.apply_snapshot(snap))
    }

    /// Unwraps the inner ecovisor.
    pub fn into_inner(self) -> Ecovisor {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}
