//! The evented serving runtime: one reactor thread multiplexes every
//! connection, a small worker pool runs dispatch.
//!
//! [`spawn_evented`] replaces the old thread-per-connection accept loop.
//! The reactor owns all sockets non-blocking and epoll-registered (via
//! the vendored [`reactor`] shim): it accepts, reads bytes into
//! per-connection [`RecvBuf`]s, carves complete length-prefixed frames
//! out of them, and hands those frames to the worker pool. Workers
//! decode/dispatch via the same [`process_v1_payload`] /
//! [`process_v2_payload`] the blocking server uses — the two transports
//! share negotiation ([`evaluate_hello`]) and per-frame semantics by
//! construction, so v1 and v2 clients cannot tell them apart on the
//! wire.
//!
//! ## Connection lifecycle
//!
//! ```text
//!            accept            hello frame           frames
//!  listener ───────▶ Phase::Hello ───────▶ Phase::Serving(ConnWork)
//!                        │ reject                      │ EOF / error /
//!                        ▼                             ▼ idle timeout
//!                 Phase::Draining ──reply sent──▶    closed
//! ```
//!
//! ## Scheduling invariant
//!
//! A connection's [`ConnWork`] is in the job queue **at most once**
//! (`scheduled` flips false→true exactly when it is pushed), and only
//! the worker that popped it processes its inbox — so frames on one
//! connection are served strictly in arrival order, exactly like the
//! old per-connection thread, while thousands of connections share a
//! handful of workers. Workers park on shard/settlement lock
//! acquisition inside `dispatch_batch`; no thread is ever pinned to a
//! client.
//!
//! ## Write path
//!
//! All outbound bytes go through the parent module's [`ConnShared`]
//! committed-write queue ([`PendingWrites`]): workers and the
//! settlement broadcast write non-blocking, and whatever the socket
//! refuses stays committed. The connection's [`WriteNotify`] then marks
//! the token dirty and wakes the reactor, which arms `EPOLLOUT` and
//! finishes the flush when the peer drains — `OutboxPolicy` parking
//! semantics are byte-identical to the blocking server because they are
//! the *same code* behind the same lock.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use reactor::{Events, Interest, Poll, Token, Waker};

use super::{
    evaluate_hello, process_v1_payload, process_v2_payload, wire_bytes, write_conn, AdminState,
    ConnShared, HelloOutcome, Negotiated, PendingWrites, ServeCtx, Served, ServerHandle,
    WriteNotify, DRAIN_RETAIN_BYTES, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::obs::{self, TransportMetrics};

/// Structured-log target for everything the serving runtime emits.
const LOG_TARGET: &str = "ecovisor::transport";

/// The transport-metrics handles on a serving context, if a hub is
/// attached.
fn metrics(ctx: &ServeCtx) -> Option<&TransportMetrics> {
    ctx.obs.as_deref().map(|hub| &hub.transport)
}

/// The listener's epoll token.
const LISTENER: Token = Token(0);
/// The waker's epoll token.
const WAKER: Token = Token(1);
/// First token handed to an accepted connection (tokens are never
/// reused, so a late wake-up for a closed connection cannot alias a new
/// one).
const FIRST_CONN: usize = 2;
/// Frames one worker serves from a connection's inbox before requeueing
/// it — fairness bound so a chatty connection cannot starve the rest.
const FRAMES_PER_TURN: usize = 8;
/// Initial per-connection receive buffer (grow-only up to the largest
/// in-flight frame, trimmed back to [`DRAIN_RETAIN_BYTES`] when empty).
const RECV_INITIAL: usize = 4 * 1024;
/// Readiness events drained per `epoll_wait`.
const EVENTS_CAPACITY: usize = 1024;

/// Per-connection receive accumulator: raw socket bytes land in
/// `buf[start..end]`, and complete length-prefixed frames are carved
/// off the front. This is the incremental replacement for the blocking
/// `read_exact` framing — a partial frame simply stays buffered until
/// the next readable event resumes it.
struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Server-wide receive-capacity counter this buffer charges its
    /// `buf.len()` against ([`ServerHandle`]'s `recv_buffer_bytes`).
    /// Every capacity change goes through [`set_capacity`]
    /// (RecvBuf::set_capacity) and `Drop` refunds the rest, so the
    /// counter is exact at every instant the reactor is quiescent.
    charged: Arc<AtomicUsize>,
}

impl Drop for RecvBuf {
    fn drop(&mut self) {
        self.charged.fetch_sub(self.buf.len(), Ordering::SeqCst);
    }
}

impl RecvBuf {
    fn new(charged: Arc<AtomicUsize>) -> RecvBuf {
        charged.fetch_add(RECV_INITIAL, Ordering::SeqCst);
        RecvBuf {
            buf: vec![0; RECV_INITIAL],
            start: 0,
            end: 0,
            charged,
        }
    }

    /// Grows or trims the buffer to `new_len`, keeping the shared
    /// capacity counter in sync.
    fn set_capacity(&mut self, new_len: usize) {
        let old = self.buf.len();
        if new_len > old {
            self.buf.resize(new_len, 0);
            self.charged.fetch_add(new_len - old, Ordering::SeqCst);
        } else if new_len < old {
            self.buf.truncate(new_len);
            self.buf.shrink_to(new_len);
            self.charged.fetch_sub(old - new_len, Ordering::SeqCst);
        }
    }

    /// One `read(2)` into the spare tail (compacting the consumed
    /// prefix first). `Ok(0)` is EOF; `WouldBlock` bubbles up so the
    /// caller knows the socket is drained.
    fn fill(&mut self, mut stream: &TcpStream) -> io::Result<usize> {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.end == self.buf.len() {
            self.set_capacity(self.buf.len() * 2);
        }
        let n = stream.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Carves the next complete frame off the front, if one has fully
    /// arrived. Grows the buffer up front for an announced frame so an
    /// oversized peer is rejected before any allocation, like the
    /// blocking path's length check.
    fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.end - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&self.buf[self.start..self.start + 4]);
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds MAX_FRAME_LEN"),
            ));
        }
        let len = len as usize;
        if avail < 4 + len {
            // Reserve room for the rest of the announced frame so the
            // next fill can complete it without another resize.
            if self.buf.len() < self.start + 4 + len {
                self.set_capacity(self.start + 4 + len);
            }
            return Ok(None);
        }
        let frame = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            if self.buf.len() > DRAIN_RETAIN_BYTES {
                self.set_capacity(DRAIN_RETAIN_BYTES);
            }
        }
        Ok(Some(frame))
    }

    /// `true` while a partial frame (or stray bytes) is buffered — at
    /// EOF this distinguishes a mid-frame drop from a clean close.
    fn has_partial(&self) -> bool {
        self.end > self.start
    }
}

/// Where a connection is in its lifecycle.
enum Phase {
    /// Awaiting the hello frame.
    Hello,
    /// Negotiated; inbound frames go to the worker pool.
    Serving(Arc<ConnWork>),
    /// A hello reject is draining; close once it is fully written.
    Draining { out: Vec<u8>, written: usize },
}

/// The reactor's per-connection state. The reactor thread owns this
/// exclusively; everything workers touch lives in [`ConnWork`].
struct EvConn {
    /// Shared with [`ConnShared`]'s writer half once serving begins:
    /// one fd per connection, not a `try_clone` pair.
    stream: Arc<TcpStream>,
    rbuf: RecvBuf,
    phase: Phase,
    last_read: Instant,
    /// Whether `EPOLLOUT` is currently armed (avoids a `reregister`
    /// syscall per flush).
    want_write: bool,
}

/// The worker-facing half of a served connection: the negotiated
/// parameters, the shared writer, and the inbox of complete frames the
/// reactor has carved out.
pub(super) struct ConnWork {
    neg: Negotiated,
    shared: Arc<ConnShared>,
    inbox: Mutex<VecDeque<Vec<u8>>>,
    /// `true` while this connection is in the job queue or being
    /// served; the false→true edge is the only push point, so one
    /// connection is never served by two workers at once.
    scheduled: AtomicBool,
    admin: Mutex<AdminState>,
    /// Set by whichever side (worker or reactor) kills the connection;
    /// the other side observes it and stops.
    closed: AtomicBool,
}

/// Queue state guarded by one mutex, so `stop` and the condvar wait
/// cannot miss each other.
struct QueueState {
    jobs: VecDeque<Arc<ConnWork>>,
    stopped: bool,
}

/// The worker pool's job queue: connections with non-empty inboxes.
pub(super) struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// `transport.queue_depth` — connections awaiting a worker. `None`
    /// when the server has no observability hub.
    depth: Option<Arc<obs::Gauge>>,
}

impl JobQueue {
    fn new(depth: Option<Arc<obs::Gauge>>) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                stopped: false,
            }),
            ready: Condvar::new(),
            depth,
        }
    }

    fn push(&self, work: Arc<ConnWork>) {
        let mut state = crate::lock::lock(&self.state);
        if state.stopped {
            return;
        }
        state.jobs.push_back(work);
        drop(state);
        if let Some(depth) = &self.depth {
            depth.add(1);
        }
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once the queue is stopped.
    /// Remaining jobs are discarded at stop — their sockets are already
    /// being closed by the reactor's teardown.
    fn pop(&self) -> Option<Arc<ConnWork>> {
        let mut state = crate::lock::lock(&self.state);
        loop {
            if state.stopped {
                return None;
            }
            if let Some(work) = state.jobs.pop_front() {
                drop(state);
                if let Some(depth) = &self.depth {
                    depth.sub(1);
                }
                return Some(work);
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Wakes every worker into its `None` exit. Jobs still queued are
    /// abandoned, so the depth gauge is zeroed with them — the leak
    /// gate expects every gauge back at zero after shutdown.
    pub(super) fn stop(&self) {
        crate::lock::lock(&self.state).stopped = true;
        if let Some(depth) = &self.depth {
            depth.set(0);
        }
        self.ready.notify_all();
    }
}

/// One worker thread: serve connections' inboxes until the queue stops.
fn worker_loop(queue: &JobQueue, ctx: &ServeCtx) {
    while let Some(work) = queue.pop() {
        serve_inbox(&work, ctx, queue);
    }
}

/// Kills a connection from the worker side: the reactor observes the
/// socket shutdown as readiness (EOF) and reaps the registration; the
/// notify nudge makes that prompt even on an otherwise idle loop.
fn kill_from_worker(work: &ConnWork) {
    work.closed.store(true, Ordering::SeqCst);
    let _ = crate::lock::lock(&work.shared.writer).shutdown(std::net::Shutdown::Both);
    if let Some(notify) = &work.shared.notify {
        notify.notify();
    }
}

/// Serves up to [`FRAMES_PER_TURN`] frames from one connection's inbox,
/// then yields the worker (requeueing if frames remain).
fn serve_inbox(work: &Arc<ConnWork>, ctx: &ServeCtx, queue: &JobQueue) {
    if work.closed.load(Ordering::SeqCst) {
        work.scheduled.store(false, Ordering::SeqCst);
        return;
    }
    for _ in 0..FRAMES_PER_TURN {
        let Some(payload) = crate::lock::lock(&work.inbox).pop_front() else {
            // Inbox drained: unschedule, then re-check — a frame the
            // reactor pushed between the pop and the store must not be
            // stranded, so whoever wins the swap re-enqueues.
            work.scheduled.store(false, Ordering::SeqCst);
            if !crate::lock::lock(&work.inbox).is_empty()
                && !work.scheduled.swap(true, Ordering::SeqCst)
            {
                queue.push(Arc::clone(work));
            }
            return;
        };
        let obs = metrics(ctx);
        if let Some(m) = obs {
            m.inbox_depth.sub(1);
        }
        let serve_start = Instant::now();
        let served = if work.neg.version >= PROTOCOL_VERSION {
            let mut admin = crate::lock::lock(&work.admin);
            process_v2_payload(ctx, &work.neg, &work.shared, &mut admin, &payload)
        } else {
            process_v1_payload(ctx, &work.neg, &payload)
        };
        let healthy = match served {
            Served::Reply(reply) => write_conn(&work.shared, &reply).is_ok(),
            Served::Quiet => true,
            Served::Close => false,
        };
        if let Some(m) = obs {
            m.serve_latency.record_duration(serve_start.elapsed());
        }
        if !healthy {
            kill_from_worker(work);
            work.scheduled.store(false, Ordering::SeqCst);
            return;
        }
    }
    // Fairness budget spent: back of the line (still scheduled, so no
    // second worker can pick this connection up concurrently).
    if crate::lock::lock(&work.inbox).is_empty() {
        work.scheduled.store(false, Ordering::SeqCst);
        if !crate::lock::lock(&work.inbox).is_empty()
            && !work.scheduled.swap(true, Ordering::SeqCst)
        {
            queue.push(Arc::clone(work));
        }
    } else {
        queue.push(Arc::clone(work));
    }
}

/// Arms or disarms `EPOLLOUT` to match whether the connection owes the
/// socket bytes (readable interest is always kept).
fn set_write_interest(
    poll: &Poll,
    stream: &TcpStream,
    token: usize,
    want_write: &mut bool,
    want: bool,
) {
    if *want_write == want {
        return;
    }
    let interest = if want {
        Interest::READABLE.union(Interest::WRITABLE)
    } else {
        Interest::READABLE
    };
    if poll.reregister(stream, Token(token), interest).is_ok() {
        *want_write = want;
    }
}

/// Pushes whatever output the connection owes: the committed backlog on
/// a serving connection, the reject reply on a draining one. Returns
/// `false` when the connection should close (dead socket, worker kill,
/// or a reject fully delivered).
fn flush_conn(poll: &Poll, conn: &mut EvConn, token: usize) -> bool {
    let EvConn {
        stream,
        phase,
        want_write,
        ..
    } = conn;
    match phase {
        Phase::Hello => true,
        Phase::Serving(work) => {
            if work.closed.load(Ordering::SeqCst) {
                return false;
            }
            match work.shared.flush_for_reactor() {
                Ok(drained) => {
                    set_write_interest(poll, stream, token, want_write, !drained);
                    true
                }
                Err(_) => false,
            }
        }
        Phase::Draining { out, written } => loop {
            if *written == out.len() {
                return false;
            }
            let mut sock: &TcpStream = stream;
            match sock.write(&out[*written..]) {
                Ok(0) => return false,
                Ok(n) => *written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    set_write_interest(poll, stream, token, want_write, true);
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        },
    }
}

/// Routes one complete inbound frame by phase. Returns `false` to close.
fn handle_frame(
    conn: &mut EvConn,
    token: usize,
    ctx: &ServeCtx,
    queue: &JobQueue,
    dirty: &Arc<Mutex<Vec<usize>>>,
    waker: &Waker,
    payload: Vec<u8>,
) -> bool {
    match &conn.phase {
        Phase::Hello => begin_serving(conn, token, ctx, dirty, waker, &payload),
        Phase::Serving(work) => {
            if work.closed.load(Ordering::SeqCst) {
                return false;
            }
            crate::lock::lock(&work.inbox).push_back(payload);
            if let Some(m) = metrics(ctx) {
                m.inbox_depth.add(1);
            }
            if !work.scheduled.swap(true, Ordering::SeqCst) {
                queue.push(Arc::clone(work));
            }
            true
        }
        // Bytes after a rejected hello are discarded; the connection
        // closes as soon as the reject reply drains.
        Phase::Draining { .. } => true,
    }
}

/// Evaluates the hello frame and transitions the connection to
/// `Serving` (accept) or `Draining` (reject). Returns `false` to close.
fn begin_serving(
    conn: &mut EvConn,
    token: usize,
    ctx: &ServeCtx,
    dirty: &Arc<Mutex<Vec<usize>>>,
    waker: &Waker,
    hello: &[u8],
) -> bool {
    match evaluate_hello(ctx, hello) {
        HelloOutcome::Accept(neg, reply) => {
            let shared = Arc::new(ConnShared {
                app: neg.app,
                codec: neg.codec,
                writer: Mutex::new(Arc::clone(&conn.stream)),
                filter: Mutex::new(None),
                pending: Mutex::new(PendingWrites::default()),
                notify: Some(WriteNotify {
                    token,
                    dirty: Arc::clone(dirty),
                    waker: waker.clone(),
                }),
                obs: ctx.obs.clone(),
            });
            // Only v2 connections join the push registry — v1 has no
            // push on its wire, exactly like the blocking server.
            if neg.version >= PROTOCOL_VERSION {
                crate::lock::lock(&ctx.registry).push(Arc::clone(&shared));
            }
            conn.phase = Phase::Serving(Arc::new(ConnWork {
                neg,
                shared: Arc::clone(&shared),
                inbox: Mutex::new(VecDeque::new()),
                scheduled: AtomicBool::new(false),
                admin: Mutex::new(AdminState::default()),
                closed: AtomicBool::new(false),
            }));
            // The accept reply rides the same committed-write queue as
            // every later frame, so it cannot interleave or reorder.
            write_conn(&shared, &reply).is_ok()
        }
        HelloOutcome::Reject(reply) => match wire_bytes(&reply) {
            Ok(out) => {
                conn.phase = Phase::Draining { out, written: 0 };
                true
            }
            Err(_) => false,
        },
    }
}

/// The event loop and everything it owns.
struct Reactor {
    poll: Poll,
    listener: TcpListener,
    ctx: Arc<ServeCtx>,
    queue: Arc<JobQueue>,
    /// Tokens whose connections owe the socket bytes (fed by
    /// [`WriteNotify`] from workers and the settlement broadcast).
    dirty: Arc<Mutex<Vec<usize>>>,
    waker: Waker,
    conns: HashMap<usize, EvConn>,
    next_token: usize,
    active: Arc<AtomicUsize>,
    /// Summed [`RecvBuf`] capacity across live connections; the reactor
    /// applies a delta after every readiness pass and on close, so the
    /// driver-side counter tracks growth *and* the drain-time trim.
    recv_bytes: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    /// Accept failures seen so far — the rate-limit state for the
    /// accept-failure log line (the metric counts every occurrence).
    accept_fails: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(EVENTS_CAPACITY);
        // With an idle timeout armed the loop must wake on its own to
        // sweep; otherwise it parks until readiness or the waker.
        let timeout = self
            .ctx
            .read_timeout
            .map(|t| (t / 4).max(Duration::from_millis(10)));
        while !self.stop.load(Ordering::SeqCst) {
            if self.poll.poll(&mut events, timeout).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut closed: Vec<usize> = Vec::new();
            for event in events.iter() {
                match event.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => self.waker.drain(),
                    Token(token) => {
                        if !self.conn_ready(token, event.is_writable(), event.is_readable()) {
                            closed.push(token);
                        }
                    }
                }
            }
            for token in closed {
                self.close_conn(token);
            }
            self.flush_dirty();
            if let Some(idle) = self.ctx.read_timeout {
                self.sweep_idle(idle);
            }
        }
        self.teardown();
    }

    /// Accepts until the listener would block. A transient accept
    /// failure (`EMFILE` under a connection storm, a peer that reset
    /// before accept) is logged and skipped — the listener stays
    /// registered and keeps serving whoever does get through.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poll
                        .register(&stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        EvConn {
                            stream: Arc::new(stream),
                            rbuf: RecvBuf::new(Arc::clone(&self.recv_bytes)),
                            phase: Phase::Hello,
                            last_read: Instant::now(),
                            want_write: false,
                        },
                    );
                    self.active.fetch_add(1, Ordering::SeqCst);
                    if let Some(m) = metrics(&self.ctx) {
                        m.accepts.inc();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // A flapping listener (fd exhaustion under a
                    // connection storm) used to spam stderr from here.
                    // Every failure lands in the metric; the log line is
                    // rate-limited to the first occurrence and every
                    // 64th after that.
                    self.accept_fails += 1;
                    if let Some(m) = metrics(&self.ctx) {
                        m.accept_failures.inc();
                    }
                    if self.accept_fails == 1 || self.accept_fails.is_multiple_of(64) {
                        obs::warn(
                            LOG_TARGET,
                            "accept failed",
                            &[
                                ("error", e.to_string()),
                                ("occurrences", self.accept_fails.to_string()),
                            ],
                        );
                    }
                    // Level-triggered: the listener stays ready while the
                    // backlog holds connections we cannot accept (fd
                    // exhaustion), so without a pause this loop would
                    // spin hot. Brief sleep, then let the next poll
                    // retry — fds may have been freed by then.
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            }
        }
    }

    /// One connection's readiness. Returns `false` to close it.
    fn conn_ready(&mut self, token: usize, writable: bool, readable: bool) -> bool {
        let ctx = Arc::clone(&self.ctx);
        let queue = Arc::clone(&self.queue);
        let dirty = Arc::clone(&self.dirty);
        let waker = self.waker.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        // Writes first: draining the backlog may be what unblocks the
        // peer into sending more.
        if writable && !flush_conn(&self.poll, conn, token) {
            return false;
        }
        if !readable {
            return true;
        }
        loop {
            match conn.rbuf.fill(&conn.stream) {
                // EOF. Leftover buffered bytes mean the peer dropped
                // mid-frame — routine for an adversarial or crashed
                // client; either way the connection is done.
                Ok(0) => {
                    if conn.rbuf.has_partial() {
                        if let Some(m) = metrics(&ctx) {
                            m.mid_frame_closes.inc();
                        }
                        obs::debug(
                            LOG_TARGET,
                            "peer closed mid-frame",
                            &[("token", token.to_string())],
                        );
                    }
                    return false;
                }
                Ok(n) => {
                    conn.last_read = Instant::now();
                    if let Some(m) = metrics(&ctx) {
                        m.bytes_in.add(n as u64);
                    }
                    loop {
                        match conn.rbuf.next_frame() {
                            Ok(Some(payload)) => {
                                if let Some(m) = metrics(&ctx) {
                                    m.frames_in.inc();
                                }
                                if !handle_frame(conn, token, &ctx, &queue, &dirty, &waker, payload)
                                {
                                    return false;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                if let Some(m) = metrics(&ctx) {
                                    m.conn_errors.inc();
                                }
                                obs::warn(
                                    LOG_TARGET,
                                    "dropping connection",
                                    &[("token", token.to_string()), ("error", e.to_string())],
                                );
                                return false;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        // A hello reply (or reject) committed above goes out now rather
        // than waiting for the next dirty sweep.
        flush_conn(&self.poll, conn, token)
    }

    /// Flushes every connection a [`WriteNotify`] marked since the last
    /// sweep.
    fn flush_dirty(&mut self) {
        let tokens = std::mem::take(&mut *crate::lock::lock(&self.dirty));
        for token in tokens {
            let keep = match self.conns.get_mut(&token) {
                Some(conn) => flush_conn(&self.poll, conn, token),
                None => continue,
            };
            if !keep {
                self.close_conn(token);
            }
        }
    }

    /// Reaps connections idle past the configured timeout — same
    /// contract as the blocking server's `set_read_timeout` reap.
    fn sweep_idle(&mut self, idle: Duration) {
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.last_read.elapsed() >= idle)
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            if let Some(m) = metrics(&self.ctx) {
                m.idle_disconnects.inc();
            }
            obs::info(
                LOG_TARGET,
                "disconnecting idle connection",
                &[("token", token.to_string()), ("idle", format!("{idle:?}"))],
            );
            self.close_conn(token);
        }
    }

    /// Tears one connection down: epoll deregistration (explicit,
    /// because [`ConnShared`]'s writer half shares the stream `Arc` and
    /// keeps the file description — and thus the registration — alive
    /// past this drop), push-registry removal, both-ways shutdown so
    /// the peer and any worker mid-write observe the close.
    fn close_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.active.fetch_sub(1, Ordering::SeqCst);
        let _ = self.poll.deregister(&*conn.stream);
        if let Phase::Serving(work) = &conn.phase {
            work.closed.store(true, Ordering::SeqCst);
            crate::lock::lock(&self.ctx.registry).retain(|c| !Arc::ptr_eq(c, &work.shared));
            let _ = crate::lock::lock(&work.shared.writer).shutdown(std::net::Shutdown::Both);
            // Frames still in the inbox will never be served; settle
            // their gauge contribution so the depth returns to zero
            // after churn (the leak-gate contract for every gauge).
            let mut inbox = crate::lock::lock(&work.inbox);
            let abandoned = inbox.len();
            inbox.clear();
            drop(inbox);
            if abandoned > 0 {
                if let Some(m) = metrics(&self.ctx) {
                    m.inbox_depth.sub(abandoned as i64);
                }
            }
        }
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Shutdown path: close every connection, then the listener drops
    /// with `self`. Runs on the reactor thread, so no registration can
    /// race it.
    fn teardown(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }
}

/// Spawns the evented runtime: the reactor thread plus `workers`
/// dispatch threads (0 = auto-size from available parallelism, clamped
/// to 2..=8). Returns the same [`ServerHandle`] surface the old
/// thread-per-connection `spawn` did.
pub(super) fn spawn_evented(
    listener: TcpListener,
    ctx: Arc<ServeCtx>,
    workers: usize,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    poll.register(&listener, LISTENER, Interest::READABLE)?;
    let waker = Waker::new(&poll, WAKER)?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::clone(&ctx.active);
    let recv_bytes = Arc::clone(&ctx.recv_bytes);
    let queue = Arc::new(JobQueue::new(
        metrics(&ctx).map(|m| Arc::clone(&m.queue_depth)),
    ));
    let dirty: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));

    let worker_count = if workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .clamp(2, 8)
    } else {
        workers
    };
    let mut worker_handles = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let queue = Arc::clone(&queue);
        let ctx = Arc::clone(&ctx);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("ecovisor-worker-{i}"))
                .spawn(move || worker_loop(&queue, &ctx))?,
        );
    }

    let reactor = Reactor {
        poll,
        listener,
        ctx: Arc::clone(&ctx),
        queue: Arc::clone(&queue),
        dirty,
        waker: waker.clone(),
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        active,
        recv_bytes,
        stop: Arc::clone(&stop),
        accept_fails: 0,
    };
    let reactor_handle = std::thread::Builder::new()
        .name("ecovisor-reactor".into())
        .spawn(move || reactor.run())?;

    Ok(ServerHandle {
        addr,
        ctx,
        stop,
        waker,
        reactor: Some(reactor_handle),
        workers: worker_handles,
        queue,
    })
}
