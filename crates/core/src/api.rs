//! The trait-based compatibility façade over the wire protocol.
//!
//! **The primary application-facing API is the versioned command/query
//! protocol in [`crate::proto`]** — these traits survive as a thin,
//! synchronous veneer for code that predates it (and as the shape the
//! conformance suite checks the protocol against). Every method here
//! corresponds to exactly one [`crate::proto::EnergyRequest`] variant;
//! [`crate::ecovisor::ScopedApi`] implements both traits by building
//! that request, routing it through the one dispatch hot path
//! ([`crate::ecovisor::Ecovisor::dispatch`]), and translating the
//! [`crate::proto::EnergyResponse`] back into the method's signature.
//! The façade therefore *cannot* drift from the protocol: scope checks,
//! error values, and semantics are shared by construction.
//!
//! [`EcovisorApi`] is the paper's **Table 1** — "Ecovisor's narrow API
//! that provides applications visibility and control over their virtual
//! energy system" — plus the container/resource management calls §3.1
//! says applications may also make (launch, stop, suspend, resume,
//! horizontal/vertical scaling). Getter and setter methods are
//! synchronous downcalls; the `tick()` upcall is delivered through
//! [`crate::app::Application::on_tick`] (which hands applications the
//! batching [`crate::client::EcovisorClient`] instead of these traits).
//!
//! [`LibraryApi`] is the paper's **Table 2** — "example library functions
//! using ecovisor's API": interval energy/carbon queries (backed by the
//! telemetry TSDB, as the prototype backs them with InfluxDB), carbon
//! rates and budgets. The `notify_*` functions of Table 2 surface as
//! [`crate::event::Notification`] upcalls.
//!
//! Both traits are object-safe and scoped: a handle is bound to one
//! [`AppId`], and the dispatcher underneath rejects any request that
//! names another tenant's containers, so a tenant can never touch
//! another tenant's containers or battery.

use container_cop::{AppId, ContainerId, ContainerSpec};
use simkit::time::{SimDuration, SimTime};
use simkit::units::{CarbonIntensity, CarbonRate, Co2Grams, WattHours, Watts};

use crate::error::Result;

/// Table 1: the narrow per-application API, plus container management.
pub trait EcovisorApi {
    // ------------------------------------------------------------------
    // Table 1 setters
    // ------------------------------------------------------------------

    /// Sets a container's power cap (`set_container_powercap`).
    ///
    /// Enforced by converting the cap into a cgroup-style CPU quota on
    /// the hosting server.
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn set_container_powercap(&mut self, container: ContainerId, cap: Watts) -> Result<()>;

    /// Removes a container's power cap.
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn clear_container_powercap(&mut self, container: ContainerId) -> Result<()>;

    /// Sets the virtual battery's grid-charging rate, which applies
    /// "until full" (`set_battery_charge_rate`).
    fn set_battery_charge_rate(&mut self, rate: Watts);

    /// Sets the maximum rate at which the virtual battery may discharge
    /// to serve this app's deficit (`set_battery_max_discharge`).
    fn set_battery_max_discharge(&mut self, rate: Watts);

    // ------------------------------------------------------------------
    // Table 1 getters
    // ------------------------------------------------------------------

    /// Virtual solar power available this tick (`get_solar_power`).
    fn get_solar_power(&self) -> Watts;

    /// Current virtual grid power usage (`get_grid_power`).
    fn get_grid_power(&self) -> Watts;

    /// Current grid carbon intensity (`get_grid_carbon`).
    fn get_grid_carbon(&self) -> CarbonIntensity;

    /// Current battery discharge rate (`get_battery_discharge_rate`).
    fn get_battery_discharge_rate(&self) -> Watts;

    /// Energy stored in the virtual battery (`get_battery_charge_level`).
    fn get_battery_charge_level(&self) -> WattHours;

    /// A container's power cap, if set (`get_container_powercap`).
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn get_container_powercap(&self, container: ContainerId) -> Result<Option<Watts>>;

    /// A container's current power usage (`get_container_power`).
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn get_container_power(&self, container: ContainerId) -> Result<Watts>;

    // ------------------------------------------------------------------
    // Container & resource management (§3.1)
    // ------------------------------------------------------------------

    /// Launches a container in this app's virtual cluster (horizontal
    /// scale-up).
    ///
    /// # Errors
    ///
    /// Fails when no server has capacity for the spec.
    fn launch_container(&mut self, spec: ContainerSpec) -> Result<ContainerId>;

    /// Destroys a container (horizontal scale-down).
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist, is already stopped, or
    /// belongs to another app.
    fn stop_container(&mut self, container: ContainerId) -> Result<()>;

    /// Freezes a running container.
    ///
    /// # Errors
    ///
    /// Fails if the container is not running or belongs to another app.
    fn suspend_container(&mut self, container: ContainerId) -> Result<()>;

    /// Thaws a suspended container.
    ///
    /// # Errors
    ///
    /// Fails if the container is not suspended or belongs to another app.
    fn resume_container(&mut self, container: ContainerId) -> Result<()>;

    /// Sets a container's CPU demand for this tick (what fraction of its
    /// allocated cores the workload wants to use).
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn set_container_demand(&mut self, container: ContainerId, demand: f64) -> Result<()>;

    /// Ids of this app's live containers, in id order.
    fn container_ids(&self) -> Vec<ContainerId>;

    /// Number of this app's running (not suspended) containers.
    fn running_containers(&self) -> usize;

    /// Effective compute capacity this tick, in core-equivalents
    /// (demand clipped by quotas across all containers).
    fn effective_cores(&self) -> f64;

    /// One container's effective cores this tick (demand clipped by its
    /// power-cap quota) — the per-task grant §5.4's policies balance.
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn container_effective_cores(&self, container: ContainerId) -> Result<f64>;

    // ------------------------------------------------------------------
    // Clock
    // ------------------------------------------------------------------

    /// Start instant of the current tick.
    fn now(&self) -> SimTime;

    /// The tick interval Δt.
    fn tick_interval(&self) -> SimDuration;

    /// This application's id.
    fn app_id(&self) -> AppId;
}

/// Table 2: library functions layered on the narrow API and the
/// historical telemetry store.
pub trait LibraryApi: EcovisorApi {
    /// Energy used by a container over `[from, to)`
    /// (`get_container_energy`).
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn get_container_energy(
        &self,
        container: ContainerId,
        from: SimTime,
        to: SimTime,
    ) -> Result<WattHours>;

    /// Carbon attributed to a container over `[from, to)`
    /// (`get_container_carbon`). Carbon is apportioned to containers in
    /// proportion to their share of app power each tick.
    ///
    /// # Errors
    ///
    /// Fails if the container does not exist or belongs to another app.
    fn get_container_carbon(
        &self,
        container: ContainerId,
        from: SimTime,
        to: SimTime,
    ) -> Result<Co2Grams>;

    /// Current power usage across the app's containers (`get_app_power`).
    fn get_app_power(&self) -> Watts;

    /// Energy used by the app over `[from, to)` (`get_app_energy`).
    fn get_app_energy(&self, from: SimTime, to: SimTime) -> WattHours;

    /// Cumulative carbon attributed to the app (`get_app_carbon`).
    fn get_app_carbon(&self) -> Co2Grams;

    /// Carbon attributed to the app over `[from, to)`.
    fn get_app_carbon_between(&self, from: SimTime, to: SimTime) -> Co2Grams;

    /// Sets a carbon rate limit (`set_carbon_rate`): each tick the
    /// ecovisor converts the rate into container power caps given the
    /// current carbon intensity (zero-carbon supply — solar and battery —
    /// is exempt). `None` clears the limit.
    fn set_carbon_rate(&mut self, rate: Option<CarbonRate>);

    /// The active carbon rate limit, if any.
    fn carbon_rate_limit(&self) -> Option<CarbonRate>;

    /// Sets a total carbon budget (`set_carbon_budget`). Budgets are
    /// advisory: the library tracks consumption and exposes the
    /// remainder; enforcement strategy is the application's policy
    /// decision (the point of §5.2). `None` clears the budget.
    fn set_carbon_budget(&mut self, budget: Option<Co2Grams>);

    /// The configured carbon budget, if any.
    fn carbon_budget(&self) -> Option<Co2Grams>;

    /// Budget remaining (budget − cumulative carbon), if one is set.
    fn remaining_carbon_budget(&self) -> Option<Co2Grams>;
}
