//! Tick-cadenced trace replay and deterministic digests.
//!
//! A [`ProtocolTrace`] recorded from a live run carries everything
//! needed to reproduce that run against a freshly built ecovisor: every
//! request batch, stamped with the tick it executed in, plus the event
//! frames taken for push delivery after each settlement. This module is
//! the replay engine the scenario harness (`crates/harness`) builds on:
//!
//! * [`Ecovisor::replay_trace`] re-executes a trace at its recorded tick
//!   cadence on the **plain** dispatch path — dispatch the batches
//!   stamped for each tick, settle, regenerate that settlement's event
//!   frames, advance;
//! * [`ShardedEcovisor::replay_trace`] does the same through the
//!   **sharded** deployment wrapper (outer read-lock dispatch, event
//!   frames taken inside the settlement barrier), the path the TCP
//!   transport serves connections on;
//! * [`digest`] folds any serializable value to a stable 64-bit
//!   fingerprint via its canonical binary encoding, so "bit-identical
//!   settlement" is a one-integer comparison an artifact can carry.
//!
//! Replaying the same trace on both paths and comparing
//! [`ReplayReport`]s (or their digests) is the determinism contract the
//! scenario corpus enforces: per-app state only changes via dispatched
//! batches between settlements, so the two paths must settle
//! bit-identical totals and regenerate byte-identical push traffic.
//!
//! ## Example
//!
//! ```
//! use ecovisor::proto::{EnergyRequest, RequestBatch};
//! use ecovisor::{EcovisorBuilder, EnergyShare};
//! use simkit::units::Watts;
//!
//! // Record a tiny run …
//! let mut eco = EcovisorBuilder::new().build();
//! let app = eco.register_app("tenant", EnergyShare::grid_only()).unwrap();
//! eco.enable_protocol_trace();
//! eco.dispatch_batch(&RequestBatch::new(
//!     app,
//!     vec![EnergyRequest::SetBatteryChargeRate { rate: Watts::new(5.0) }],
//! ));
//! eco.begin_tick();
//! eco.settle_tick();
//! eco.advance_clock();
//! let trace = eco.take_protocol_trace().unwrap();
//! let recorded = eco.app_totals(app).unwrap();
//!
//! // … and replay it on a fresh twin: totals are bit-identical.
//! let mut twin = EcovisorBuilder::new().build();
//! twin.register_app("tenant", EnergyShare::grid_only()).unwrap();
//! let report = twin.replay_trace(&trace, 1);
//! assert_eq!(report.ticks, 1);
//! assert_eq!(twin.app_totals(app).unwrap(), recorded);
//! assert_eq!(ecovisor::digest(&recorded), ecovisor::digest(&twin.app_totals(app).unwrap()));
//! ```

use std::sync::atomic::Ordering;

use crate::dispatch::ProtocolTrace;
use crate::ecovisor::Ecovisor;
use crate::proto::{EventFrame, ResponseBatch};
use crate::shard::ShardedEcovisor;

/// What a tick-cadenced replay produced: the raw material for asserting
/// that a run reproduced bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Settlement ticks executed.
    pub ticks: u64,
    /// One response batch per replayed request batch, in trace order.
    /// (Responses are recomputed, not recorded — comparing them across
    /// replays checks query determinism, too.)
    pub responses: Vec<ResponseBatch>,
    /// Event frames regenerated after each settlement, apps in id order
    /// within a tick. On a faithful replay this equals the recorded
    /// [`ProtocolTrace::events`] sequence.
    pub frames: Vec<EventFrame>,
}

impl ReplayReport {
    /// Total notifications across the regenerated frames.
    pub fn event_count(&self) -> usize {
        self.frames.iter().map(|f| f.events.len()).sum()
    }
}

impl Ecovisor {
    /// Replays a recorded trace at its recorded tick cadence on the
    /// plain dispatch path.
    ///
    /// For each of `ticks` settlement ticks: dispatches every trace
    /// entry stamped at or before the tick (in trace order), runs
    /// `begin_tick`/`settle_tick`, takes each app's event frame (apps in
    /// id order — the order the recording harness and the transport's
    /// broadcast hook use), and advances the clock. Entries stamped
    /// after the final settlement (e.g. post-run polls) are dispatched
    /// at the end.
    ///
    /// Protocol tracing is suspended for the duration, so replaying
    /// never re-records, and regenerated event frames are returned
    /// rather than appended to any live trace.
    pub fn replay_trace(&mut self, trace: &ProtocolTrace, ticks: u64) -> ReplayReport {
        self.replay_trace_from(trace, 0, ticks)
    }

    /// Replays only the tail of a trace, picking up at `start_tick` —
    /// the checkpoint-resume form of [`Ecovisor::replay_trace`].
    ///
    /// The ecovisor must already hold the state the original run had
    /// entering `start_tick` (i.e. a snapshot captured after settling
    /// tick `start_tick - 1` has been [applied](Ecovisor::apply_snapshot)).
    /// Entries stamped before `start_tick` are skipped — their effects
    /// are already part of the restored state — and the settlement loop
    /// runs ticks `start_tick..ticks`. [`ReplayReport::ticks`] counts
    /// only the ticks actually executed.
    pub fn replay_trace_from(
        &mut self,
        trace: &ProtocolTrace,
        start_tick: u64,
        ticks: u64,
    ) -> ReplayReport {
        let was_tracing = self.tracing.swap(false, Ordering::Relaxed);
        let mut entries = trace
            .entries
            .iter()
            .filter(|e| e.tick >= start_tick)
            .peekable();
        let mut responses = Vec::with_capacity(trace.entries.len());
        let mut frames = Vec::new();
        for tick in start_tick..ticks {
            while entries.peek().is_some_and(|e| e.tick <= tick) {
                let entry = entries.next().expect("peeked");
                responses.push(self.dispatch_batch(&entry.batch));
            }
            self.begin_tick();
            self.settle_tick();
            for app in self.app_ids() {
                frames.extend(self.take_event_frame(app));
            }
            self.advance_clock();
        }
        for entry in entries {
            responses.push(self.dispatch_batch(&entry.batch));
        }
        self.tracing.store(was_tracing, Ordering::Relaxed);
        ReplayReport {
            ticks: ticks.saturating_sub(start_tick),
            responses,
            frames,
        }
    }
}

impl ShardedEcovisor {
    /// Replays a recorded trace at its recorded tick cadence on the
    /// **sharded** dispatch path: batches go through
    /// [`ShardedEcovisor::dispatch_batch`] (outer read lock + per-shard
    /// locking — the same path the transport's connections use) and
    /// each settlement runs under the exclusive barrier, taking event
    /// frames inside it exactly like the push broadcast hook.
    ///
    /// Semantics otherwise match [`Ecovisor::replay_trace`].
    pub fn replay_trace(&self, trace: &ProtocolTrace, ticks: u64) -> ReplayReport {
        self.replay_trace_from(trace, 0, ticks)
    }

    /// Replays only the tail of a trace on the sharded path, picking up
    /// at `start_tick` — semantics match
    /// [`Ecovisor::replay_trace_from`].
    pub fn replay_trace_from(
        &self,
        trace: &ProtocolTrace,
        start_tick: u64,
        ticks: u64,
    ) -> ReplayReport {
        let was_tracing = self.with(|eco| eco.tracing.swap(false, Ordering::Relaxed));
        let mut entries = trace
            .entries
            .iter()
            .filter(|e| e.tick >= start_tick)
            .peekable();
        let mut responses = Vec::with_capacity(trace.entries.len());
        let mut frames = Vec::new();
        for tick in start_tick..ticks {
            while entries.peek().is_some_and(|e| e.tick <= tick) {
                let entry = entries.next().expect("peeked");
                responses.push(self.dispatch_batch(&entry.batch));
            }
            self.with(|eco| {
                eco.begin_tick();
                eco.settle_tick();
                for app in eco.app_ids() {
                    frames.extend(eco.take_event_frame(app));
                }
                eco.advance_clock();
            });
        }
        for entry in entries {
            responses.push(self.dispatch_batch(&entry.batch));
        }
        self.with(|eco| eco.tracing.store(was_tracing, Ordering::Relaxed));
        ReplayReport {
            ticks: ticks.saturating_sub(start_tick),
            responses,
            frames,
        }
    }
}

/// A stable 64-bit fingerprint of any serializable value: FNV-1a over
/// the value's canonical [`serde::binary`] encoding.
///
/// Floats contribute their exact little-endian IEEE-754 bit patterns,
/// so two values digest equal **iff** they are bit-identical — the
/// comparison the scenario corpus stores per artifact ("these totals,
/// these event frames") without shipping a second copy of the data.
pub fn digest<T: serde::Serialize + ?Sized>(value: &T) -> u64 {
    fnv1a(&serde::binary::to_bytes(value))
}

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_discriminating() {
        let a = vec![1.0_f64, 2.0, 3.0];
        let b = vec![1.0_f64, 2.0, 3.0000000001];
        assert_eq!(digest(&a), digest(&a));
        assert_ne!(digest(&a), digest(&b));
        // Known FNV-1a vectors over the raw encoding keep the digest
        // honest across refactors of the hash itself.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
