//! Runtime observability: the metric hub wired through dispatch,
//! settlement, snapshot/federation, and the serving transport.
//!
//! [`power_telemetry::ops`] supplies the primitives (sharded counters,
//! gauges, log2-bucket histograms, the registry, the structured log
//! facade); this module owns the *glue*: one [`ObsHub`] per ecovisor
//! holding pre-registered handles for every load-bearing path, so the
//! hot paths never touch the registry's lock.
//!
//! ## Determinism rules
//!
//! Observability must be invisible to the replay contract
//! (`docs/OBSERVABILITY.md` spells this out; a regression test in the
//! harness enforces it):
//!
//! * metrics are **write-only side channels** — no counter, gauge, or
//!   histogram reading flows into responses, trace bytes, or settlement
//!   arithmetic;
//! * **wall-clock values never leave the registry** — histograms store
//!   durations, and dispatch-side series are labeled by the
//!   deterministic tick index (`core.tick`), never by host time;
//! * the dispatch fast path pays a single thread-local tally (sampling
//!   countdown + pending request count, no atomics); full timing
//!   (batch latency, lock waits, per-kind counts) runs on a
//!   deterministic 1-in-[`DISPATCH_SAMPLE`] count-based sample, so
//!   instrumentation cost stays under the 2% hot-path budget
//!   (`BENCH_obs_overhead.json`).
//!
//! Attach a hub with [`Ecovisor::attach_obs`](crate::Ecovisor::attach_obs)
//! (the TCP server attaches one automatically at bind); read it back
//! over the wire with the credential-gated v2 `Stats` admin request
//! (`docs/PROTOCOL.md` §11) or `ecoharness stats`.

use std::cell::Cell;
use std::sync::Arc;

pub use power_telemetry::ops::{
    clear_ring, debug, enabled, error, info, log, max_level, ring_records, set_max_level,
    set_stderr_sink, trace, warn, Counter, Gauge, Histogram, HistogramSnapshot, Level, LogRecord,
    MetricEntry, MetricValue, MetricsSnapshot, Registry,
};

use crate::proto::EnergyRequest;

/// Dispatch batches between sampled full-timing passes. Power of two so
/// the countdown check is branch-predictable; count-based (never
/// wall-clock-based) so sampling itself is deterministic per thread.
pub const DISPATCH_SAMPLE: u32 = 256;

/// Pre-registered handles for the core (dispatch/settlement/snapshot/
/// federation) paths.
#[derive(Debug)]
pub struct CoreMetrics {
    /// `dispatch.requests_total` — every request in every batch.
    pub requests: Arc<Counter>,
    /// `dispatch.batches_total` — sampled ×[`DISPATCH_SAMPLE`].
    pub batches: Arc<Counter>,
    /// `dispatch.requests.{kind}_total` by [`EnergyRequest::kind_index`]
    /// — sampled ×[`DISPATCH_SAMPLE`].
    pub by_kind: Vec<Arc<Counter>>,
    /// `dispatch.batch_latency_ns` — whole-batch dispatch latency
    /// (sampled).
    pub batch_latency: Arc<Histogram>,
    /// `dispatch.shard_lock_wait_ns` — time to acquire the app shard
    /// lock (sampled).
    pub shard_lock_wait: Arc<Histogram>,
    /// `dispatch.cop_lock_wait_ns` — time to acquire the shared COP
    /// guard (sampled, command batches that touch containers).
    pub cop_lock_wait: Arc<Histogram>,
    /// `settle.barrier_wait_ns` — time the driver waits for dispatch to
    /// quiesce (outer write-lock acquisition).
    pub barrier_wait: Arc<Histogram>,
    /// `settle.duration_ns` — begin→advance settlement work inside the
    /// barrier.
    pub settle_duration: Arc<Histogram>,
    /// `core.tick` — the deterministic tick index after the last
    /// settlement (the tick-stamp for dispatch-side series).
    pub tick: Arc<Gauge>,
    /// `snapshot.capture_ns` — full-state capture latency.
    pub snapshot_capture: Arc<Histogram>,
    /// `snapshot.restore_ns` — full-state restore latency.
    pub snapshot_restore: Arc<Histogram>,
    /// `federation.collect_ns` — federated tick phase one.
    pub fed_collect: Arc<Histogram>,
    /// `federation.settle_ns` — federated tick phase two.
    pub fed_settle: Arc<Histogram>,
}

thread_local! {
    /// Per-thread dispatch fast-path state: `(countdown, pending
    /// requests)`. One TLS access covers both the sampling phase and
    /// exact request accounting — the unsampled path touches nothing
    /// else, which is what keeps the hot-path overhead under the 2%
    /// budget. Shared by every hub on the thread (the pending count is
    /// flushed into whichever hub's counter triggers the sample, which
    /// is always the hub that accumulated it: an ecovisor has at most
    /// one hub, and a thread dispatches into one ecovisor at a time).
    static DISPATCH_TLS: Cell<(u32, u64)> = const { Cell::new((0, 0)) };
}

impl CoreMetrics {
    fn new(registry: &Registry) -> CoreMetrics {
        CoreMetrics {
            requests: registry.counter("dispatch.requests_total"),
            batches: registry.counter("dispatch.batches_total"),
            by_kind: EnergyRequest::KIND_NAMES
                .iter()
                .map(|kind| registry.counter(&format!("dispatch.requests.{kind}_total")))
                .collect(),
            batch_latency: registry.histogram("dispatch.batch_latency_ns"),
            shard_lock_wait: registry.histogram("dispatch.shard_lock_wait_ns"),
            cop_lock_wait: registry.histogram("dispatch.cop_lock_wait_ns"),
            barrier_wait: registry.histogram("settle.barrier_wait_ns"),
            settle_duration: registry.histogram("settle.duration_ns"),
            tick: registry.gauge("core.tick"),
            snapshot_capture: registry.histogram("snapshot.capture_ns"),
            snapshot_restore: registry.histogram("snapshot.restore_ns"),
            fed_collect: registry.histogram("federation.collect_ns"),
            fed_settle: registry.histogram("federation.settle_ns"),
        }
    }

    /// The dispatch fast path: folds `requests` into this thread's
    /// pending count and advances the sampling countdown — one
    /// thread-local access, no atomics. Returns `Some(pending)` once
    /// every [`DISPATCH_SAMPLE`] calls: the batch that takes the
    /// full-timing slow path, handed the accumulated request count to
    /// flush into [`CoreMetrics::requests`]. (`requests_total` thus
    /// trails the true total by at most one sampling window per
    /// thread.)
    #[inline]
    pub fn tally(&self, requests: u64) -> Option<u64> {
        DISPATCH_TLS.with(|c| {
            let (countdown, pending) = c.get();
            let pending = pending + requests;
            if countdown == 0 {
                c.set((DISPATCH_SAMPLE - 1, 0));
                Some(pending)
            } else {
                c.set((countdown - 1, pending));
                None
            }
        })
    }
}

/// Pre-registered handles for the serving transport (reactor + worker
/// pool). This layer owns the wall clock: every frame served here is
/// timed at full fidelity — the path is microsecond-scale, so the
/// budget is plentiful.
#[derive(Debug)]
pub struct TransportMetrics {
    /// `transport.accepts_total` — connections accepted.
    pub accepts: Arc<Counter>,
    /// `transport.accept_failures_total` — accept errors (fd
    /// exhaustion, peer reset before accept). Counted always, logged
    /// rate-limited.
    pub accept_failures: Arc<Counter>,
    /// `transport.frames_in_total` — complete frames carved off
    /// receive buffers.
    pub frames_in: Arc<Counter>,
    /// `transport.bytes_in_total` — raw bytes read off sockets.
    pub bytes_in: Arc<Counter>,
    /// `transport.frames_out_total` — frames committed to write queues.
    pub frames_out: Arc<Counter>,
    /// `transport.bytes_out_total` — bytes committed to write queues
    /// (length prefixes included).
    pub bytes_out: Arc<Counter>,
    /// `transport.coalesce_drops_total` — notifications displaced by
    /// the outbox policy while parking under backpressure (a level
    /// event coalesced/evicted rather than queued).
    pub coalesce_drops: Arc<Counter>,
    /// `transport.queue_depth` — connections awaiting a worker.
    pub queue_depth: Arc<Gauge>,
    /// `transport.inbox_depth` — decoded frames awaiting dispatch
    /// across all connections.
    pub inbox_depth: Arc<Gauge>,
    /// `transport.serve_latency_ns` — decode→dispatch→reply-write per
    /// frame.
    pub serve_latency: Arc<Histogram>,
    /// `transport.idle_disconnects_total` — connections reaped by the
    /// idle sweep.
    pub idle_disconnects: Arc<Counter>,
    /// `transport.conn_errors_total` — connections dropped on protocol
    /// or I/O errors.
    pub conn_errors: Arc<Counter>,
    /// `transport.mid_frame_closes_total` — peers that disconnected
    /// with a partial frame buffered.
    pub mid_frame_closes: Arc<Counter>,
}

impl TransportMetrics {
    fn new(registry: &Registry) -> TransportMetrics {
        TransportMetrics {
            accepts: registry.counter("transport.accepts_total"),
            accept_failures: registry.counter("transport.accept_failures_total"),
            frames_in: registry.counter("transport.frames_in_total"),
            bytes_in: registry.counter("transport.bytes_in_total"),
            frames_out: registry.counter("transport.frames_out_total"),
            bytes_out: registry.counter("transport.bytes_out_total"),
            coalesce_drops: registry.counter("transport.coalesce_drops_total"),
            queue_depth: registry.gauge("transport.queue_depth"),
            inbox_depth: registry.gauge("transport.inbox_depth"),
            serve_latency: registry.histogram("transport.serve_latency_ns"),
            idle_disconnects: registry.counter("transport.idle_disconnects_total"),
            conn_errors: registry.counter("transport.conn_errors_total"),
            mid_frame_closes: registry.counter("transport.mid_frame_closes_total"),
        }
    }
}

/// One ecovisor's observability hub: the registry plus pre-registered
/// handles for every instrumented path.
///
/// Shared by `Arc`: the ecovisor, the serving context, the reactor, and
/// every connection hold clones; recording is lock-free through the
/// handles, and the registry lock is touched only by
/// [`snapshot`](Self::snapshot) and late registration.
#[derive(Debug)]
pub struct ObsHub {
    registry: Arc<Registry>,
    /// Core-path handles.
    pub core: CoreMetrics,
    /// Transport-path handles.
    pub transport: TransportMetrics,
}

impl ObsHub {
    /// A fresh hub with every catalogue metric pre-registered.
    pub fn new() -> Arc<ObsHub> {
        let registry = Arc::new(Registry::new());
        let core = CoreMetrics::new(&registry);
        let transport = TransportMetrics::new(&registry);
        Arc::new(ObsHub {
            registry,
            core,
            transport,
        })
    }

    /// The underlying registry (for ad-hoc metrics beyond the
    /// pre-registered catalogue).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A serializable dump of every metric — the payload of the wire
    /// `Stats` request.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// `true` when the `ECOVISOR_OBS` environment variable asks for
/// observability in paths that default to none (the harness recorder
/// and verifier check this; the TCP server always attaches a hub).
/// Unset, empty, or `0` means off.
pub fn env_enabled() -> bool {
    std::env::var("ECOVISOR_OBS").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_preregisters_the_catalogue() {
        let hub = ObsHub::new();
        let snap = hub.snapshot();
        for name in [
            "dispatch.requests_total",
            "dispatch.batch_latency_ns",
            "settle.barrier_wait_ns",
            "settle.duration_ns",
            "transport.queue_depth",
            "transport.serve_latency_ns",
            "snapshot.capture_ns",
            "federation.collect_ns",
        ] {
            assert!(snap.get(name).is_some(), "missing {name}");
        }
        // One per-kind counter per request kind.
        assert_eq!(hub.core.by_kind.len(), EnergyRequest::KIND_NAMES.len());
    }

    #[test]
    fn sampling_fires_once_per_window_and_conserves_requests() {
        let hub = ObsHub::new();
        // Align to the start of a window, then count one full window.
        while hub.core.tally(0).is_none() {}
        let flushed: Vec<u64> = (0..DISPATCH_SAMPLE)
            .filter_map(|_| hub.core.tally(32))
            .collect();
        // Exactly one sampled batch per window, and the flush carries
        // every request tallied since the previous one.
        assert_eq!(flushed, vec![32 * u64::from(DISPATCH_SAMPLE)]);
    }
}
