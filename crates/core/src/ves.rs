//! The per-application virtual energy system (VES).
//!
//! Each registered application receives "the abstraction of a virtual
//! energy system, which supplies power to each application's virtual
//! cluster ... a virtual grid connection, a virtual battery, and a virtual
//! solar array" (§3.1). This module implements that abstraction and its
//! per-tick settlement semantics:
//!
//! * virtual solar power always satisfies demand first;
//! * excess solar charges the virtual battery (grid supplements charging
//!   up to the application's configured rate, with carbon attributed);
//! * deficits draw from the battery up to the configured maximum
//!   discharge rate, then from the grid, attributing carbon;
//! * the ecovisor retains one tick of battery headroom for solar, so the
//!   solar power available in a tick is the output buffered during the
//!   previous tick — applications always know their solar budget.
//!
//! Settlement is split in two phases so the ecovisor can enforce
//! *aggregate* physical battery rate limits across applications (§3.3):
//! [`VirtualEnergySystem::desired_flows`] proposes flows, the ecovisor
//! computes per-direction throttle factors, and
//! [`VirtualEnergySystem::apply_flows`] commits them.

use serde::{Deserialize, Serialize};

use energy_system::battery::Battery;
use simkit::time::SimDuration;
use simkit::units::{CarbonIntensity, CarbonRate, Co2Grams, WattHours, Watts};

use crate::event::Notification;
use crate::share::EnergyShare;

/// Committed power flows for one application over one tick.
///
/// All power fields are mean watts over the tick; multiply by Δt for
/// energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VesFlows {
    /// Power demanded by the application's containers.
    pub demand: Watts,
    /// Virtual solar power available this tick.
    pub solar_available: Watts,
    /// Solar power serving demand.
    pub solar_to_load: Watts,
    /// Own solar power charged into the virtual battery.
    pub solar_to_battery: Watts,
    /// Own solar power surrendered to the ecovisor's excess pool.
    pub solar_surplus: Watts,
    /// Solar power received from the excess pool into the battery.
    pub redistributed_in: Watts,
    /// Battery power serving demand.
    pub battery_to_load: Watts,
    /// Grid power serving demand.
    pub grid_to_load: Watts,
    /// Grid power charging the battery (charge-rate supplement).
    pub grid_to_battery: Watts,
    /// Demand that could not be served (grid cap exhausted).
    pub unmet_demand: Watts,
    /// Carbon emission rate attributed this tick.
    pub carbon_rate: CarbonRate,
    /// Carbon mass attributed this tick.
    pub carbon: Co2Grams,
}

impl VesFlows {
    /// Total grid import this tick.
    pub fn grid_import(&self) -> Watts {
        self.grid_to_load + self.grid_to_battery
    }

    /// Largest conservation violation in watts (0 = perfectly conserved):
    /// checks both the demand side and the solar side of the ledger.
    pub fn conservation_error(&self) -> f64 {
        let demand_err = (self.demand
            - (self.solar_to_load + self.battery_to_load + self.grid_to_load + self.unmet_demand))
            .watts()
            .abs();
        let solar_err = (self.solar_available
            - (self.solar_to_load + self.solar_to_battery + self.solar_surplus))
            .watts()
            .abs();
        demand_err.max(solar_err)
    }

    /// `true` when conservation holds within tolerance.
    pub fn is_conserved(&self) -> bool {
        self.conservation_error() < 1e-6
    }
}

/// Proposed (pre-throttling) flows for one application.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DesiredFlows {
    /// Demand presented.
    pub demand: Watts,
    /// Solar available.
    pub solar_available: Watts,
    /// Solar directly serving load.
    pub solar_to_load: Watts,
    /// Proposed solar→battery charge power.
    pub charge_solar: Watts,
    /// Proposed grid→battery charge power (supplement to the configured
    /// charge rate).
    pub charge_grid: Watts,
    /// Solar the battery cannot take (before redistribution).
    pub surplus: Watts,
    /// Proposed battery discharge power.
    pub discharge: Watts,
    /// Demand not covered by solar (deficit).
    pub deficit: Watts,
}

impl DesiredFlows {
    /// Total proposed charge power.
    pub fn total_charge(&self) -> Watts {
        self.charge_solar + self.charge_grid
    }
}

/// Cumulative per-application accounting totals.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VesTotals {
    /// Total energy consumed by the application's containers.
    pub energy: WattHours,
    /// Total energy imported from the grid (load + battery charging).
    pub grid_energy: WattHours,
    /// Total solar energy used (load + battery, incl. redistribution).
    pub solar_energy: WattHours,
    /// Total carbon attributed.
    pub carbon: Co2Grams,
    /// Total solar energy surrendered to the excess pool.
    pub surplus_energy: WattHours,
}

/// The virtual energy system of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualEnergySystem {
    share: EnergyShare,
    battery: Option<Battery>,
    /// Grid-charging rate requested via Table 1 `set_battery_charge_rate`.
    charge_rate: Watts,
    /// Discharge cap requested via Table 1 `set_battery_max_discharge`.
    max_discharge: Watts,
    /// Solar output buffered during the previous tick — the power
    /// available this tick.
    solar_buffer: Watts,
    last_flows: VesFlows,
    totals: VesTotals,
    was_full: bool,
    was_empty: bool,
    /// When set (carbon budget exhausted), the effective grid power cap
    /// is zero regardless of the share's cap: the app runs on
    /// zero-carbon supply only.
    grid_clamped: bool,
}

impl VirtualEnergySystem {
    /// Creates a VES from a validated share.
    ///
    /// # Panics
    ///
    /// Panics if the share fails validation (the ecovisor validates at
    /// registration, so this indicates a caller bug).
    pub fn new(share: EnergyShare) -> Self {
        share.validate().expect("share must be validated upstream");
        let battery = if share.has_battery() {
            Some(Battery::new_at(
                share.virtual_battery_spec(),
                share.battery_initial_soc,
            ))
        } else {
            None
        };
        let max_discharge = battery
            .as_ref()
            .map(|b| b.spec().max_discharge_rate)
            .unwrap_or(Watts::ZERO);
        let was_full = battery.as_ref().map(Battery::is_full).unwrap_or(false);
        let was_empty = battery.as_ref().map(Battery::is_empty).unwrap_or(false);
        Self {
            share,
            battery,
            charge_rate: Watts::ZERO,
            max_discharge,
            solar_buffer: Watts::ZERO,
            last_flows: VesFlows::default(),
            totals: VesTotals::default(),
            was_full,
            was_empty,
            grid_clamped: false,
        }
    }

    /// The share this VES was built from.
    pub fn share(&self) -> &EnergyShare {
        &self.share
    }

    /// The virtual battery, if the share includes one.
    pub fn battery(&self) -> Option<&Battery> {
        self.battery.as_ref()
    }

    /// Stored energy in the virtual battery (Table 1
    /// `get_battery_charge_level`). Zero without a battery.
    pub fn battery_charge_level(&self) -> WattHours {
        self.battery
            .as_ref()
            .map(Battery::charge_level)
            .unwrap_or(WattHours::ZERO)
    }

    /// Virtual battery state of charge fraction (0 without a battery).
    pub fn battery_soc(&self) -> f64 {
        self.battery
            .as_ref()
            .map(Battery::soc_fraction)
            .unwrap_or(0.0)
    }

    /// Sets the grid-charging rate (Table 1 `set_battery_charge_rate`).
    pub fn set_charge_rate(&mut self, rate: Watts) {
        self.charge_rate = rate.max_zero();
    }

    /// Currently requested grid-charging rate.
    pub fn charge_rate(&self) -> Watts {
        self.charge_rate
    }

    /// Sets the maximum discharge rate (Table 1
    /// `set_battery_max_discharge`), clamped to the virtual battery's
    /// physical 1C limit.
    pub fn set_max_discharge(&mut self, rate: Watts) {
        let physical = self
            .battery
            .as_ref()
            .map(|b| b.spec().max_discharge_rate)
            .unwrap_or(Watts::ZERO);
        self.max_discharge = rate.max_zero().min(physical);
    }

    /// Current maximum discharge rate.
    pub fn max_discharge(&self) -> Watts {
        self.max_discharge
    }

    /// Clamps (or unclamps) grid draw to zero — the enforcement arm of
    /// an exhausted carbon budget (Table 2). While clamped the app runs
    /// on zero-carbon supply only: solar and battery still serve load,
    /// all grid draw (load and charging) is shed.
    pub fn set_grid_clamp(&mut self, clamped: bool) {
        self.grid_clamped = clamped;
    }

    /// Whether grid draw is currently clamped to zero.
    pub fn grid_clamped(&self) -> bool {
        self.grid_clamped
    }

    /// The grid cap settlement enforces: zero when clamped, otherwise
    /// the share's cap.
    fn effective_grid_cap(&self) -> Option<Watts> {
        if self.grid_clamped {
            Some(Watts::ZERO)
        } else {
            self.share.grid_power_cap
        }
    }

    /// Solar power available this tick (Table 1 `get_solar_power`).
    pub fn solar_available(&self) -> Watts {
        self.solar_buffer
    }

    /// Buffers the physical solar output of the just-finished tick for
    /// availability in the next tick (called by the ecovisor).
    pub fn buffer_solar(&mut self, app_share_of_output: Watts) {
        self.solar_buffer = app_share_of_output.max_zero();
    }

    /// Flows committed in the most recent tick.
    pub fn last_flows(&self) -> &VesFlows {
        &self.last_flows
    }

    /// Cumulative totals.
    pub fn totals(&self) -> &VesTotals {
        &self.totals
    }

    /// Phase 1: proposes flows for this tick given container demand.
    pub fn desired_flows(&self, demand: Watts, dt: SimDuration) -> DesiredFlows {
        let demand = demand.max_zero();
        let solar_available = self.solar_buffer;
        let solar_to_load = solar_available.min(demand);
        let excess = solar_available - solar_to_load;
        let deficit = demand - solar_to_load;

        let (charge_solar, charge_grid, surplus, discharge) = match &self.battery {
            Some(battery) => {
                let charge_allow = battery.max_charge_power(dt);
                let charge_solar = excess.min(charge_allow);
                let surplus = excess - charge_solar;
                let discharge = if deficit > Watts::ZERO {
                    deficit
                        .min(self.max_discharge)
                        .min(battery.max_discharge_power(dt))
                } else {
                    Watts::ZERO
                };
                // Grid supplements charging only when not discharging.
                let charge_grid = if discharge == Watts::ZERO {
                    (self.charge_rate - charge_solar)
                        .max_zero()
                        .min(charge_allow - charge_solar)
                } else {
                    Watts::ZERO
                };
                (charge_solar, charge_grid, surplus, discharge)
            }
            None => (Watts::ZERO, Watts::ZERO, excess, Watts::ZERO),
        };

        DesiredFlows {
            demand,
            solar_available,
            solar_to_load,
            charge_solar,
            charge_grid,
            surplus,
            discharge,
            deficit,
        }
    }

    /// Phase 2: commits flows, applying the ecovisor's aggregate throttle
    /// factors (`charge_scale`, `discharge_scale` in `[0, 1]`) and the
    /// share's grid power cap. Returns the committed flows and any
    /// battery full/empty edge notifications.
    pub fn apply_flows(
        &mut self,
        desired: &DesiredFlows,
        charge_scale: f64,
        discharge_scale: f64,
        intensity: CarbonIntensity,
        dt: SimDuration,
    ) -> (VesFlows, Vec<Notification>) {
        let charge_scale = charge_scale.clamp(0.0, 1.0);
        let discharge_scale = discharge_scale.clamp(0.0, 1.0);

        // Throttle battery flows to the aggregate physical limits.
        let charge_solar = desired.charge_solar * charge_scale;
        let mut charge_grid = desired.charge_grid * charge_scale;
        let discharge = desired.discharge * discharge_scale;
        // Solar the battery now cannot take joins the surplus.
        let surplus = desired.surplus + (desired.charge_solar - charge_solar);

        // Grid covers the unthrottled deficit remainder plus charging.
        let mut grid_to_load = (desired.deficit - discharge).max_zero();
        let mut unmet = Watts::ZERO;
        if let Some(cap) = self.effective_grid_cap() {
            let requested = grid_to_load + charge_grid;
            if requested > cap {
                // Shed battery charging first, then load.
                let over = requested - cap;
                let cut_charge = charge_grid.min(over);
                charge_grid -= cut_charge;
                let still_over = over - cut_charge;
                let cut_load = grid_to_load.min(still_over);
                grid_to_load -= cut_load;
                unmet = cut_load;
            }
        }

        // Commit battery mutations.
        if let Some(battery) = &mut self.battery {
            let charge_total = charge_solar + charge_grid;
            if charge_total > Watts::ZERO {
                let accepted = battery.charge(charge_total, dt);
                debug_assert!(
                    accepted.abs_diff(charge_total) < 1e-6,
                    "charge pre-limited: requested {charge_total}, accepted {accepted}"
                );
            }
            if discharge > Watts::ZERO {
                let delivered = battery.discharge(discharge, dt);
                debug_assert!(
                    delivered.abs_diff(discharge) < 1e-6,
                    "discharge pre-limited: requested {discharge}, delivered {delivered}"
                );
            }
        }

        // Carbon attribution: all grid energy this tick at this tick's
        // intensity (step discretization, §3.1).
        let grid_import = grid_to_load + charge_grid;
        let carbon = grid_import * dt * intensity;
        let carbon_rate = carbon / dt;

        let flows = VesFlows {
            demand: desired.demand,
            solar_available: desired.solar_available,
            solar_to_load: desired.solar_to_load,
            solar_to_battery: charge_solar,
            solar_surplus: surplus,
            redistributed_in: Watts::ZERO,
            battery_to_load: discharge,
            grid_to_load,
            grid_to_battery: charge_grid,
            unmet_demand: unmet,
            carbon_rate,
            carbon,
        };

        // Totals.
        let served = flows.demand - flows.unmet_demand;
        self.totals.energy += served * dt;
        self.totals.grid_energy += grid_import * dt;
        self.totals.solar_energy += (flows.solar_to_load + flows.solar_to_battery) * dt;
        self.totals.carbon += carbon;
        self.totals.surplus_energy += surplus * dt;

        // Battery edge notifications.
        let mut events = Vec::new();
        if let Some(battery) = &self.battery {
            let full = battery.is_full();
            let empty = battery.is_empty();
            if full && !self.was_full {
                events.push(Notification::BatteryFull);
            }
            if empty && !self.was_empty {
                events.push(Notification::BatteryEmpty);
            }
            self.was_full = full;
            self.was_empty = empty;
        }

        self.last_flows = flows;
        (flows, events)
    }

    /// Offers redistributed excess solar from the pool; charges the
    /// battery with whatever fits beyond what was already charged this
    /// tick (the 0.25C rate limit applies to the tick's *total* charging)
    /// and returns the accepted power.
    pub fn accept_redistribution(&mut self, offered: Watts, dt: SimDuration) -> Watts {
        let already = self.last_flows.solar_to_battery
            + self.last_flows.grid_to_battery
            + self.last_flows.redistributed_in;
        let Some(battery) = &mut self.battery else {
            return Watts::ZERO;
        };
        let rate_room = (battery.spec().max_charge_rate - already).max_zero();
        let accepted = battery.charge(offered.max_zero().min(rate_room), dt);
        if accepted > Watts::ZERO {
            self.last_flows.redistributed_in += accepted;
            self.totals.solar_energy += accepted * dt;
        }
        accepted
    }

    /// Current discharge rate (Table 1 `get_battery_discharge_rate`):
    /// the battery power that served load in the most recent tick.
    pub fn battery_discharge_rate(&self) -> Watts {
        self.last_flows.battery_to_load
    }

    /// Current grid power usage (Table 1 `get_grid_power`).
    pub fn grid_power(&self) -> Watts {
        self.last_flows.grid_import()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> SimDuration {
        SimDuration::from_minutes(1)
    }

    fn solar_battery_share() -> EnergyShare {
        EnergyShare::grid_only()
            .with_solar_fraction(0.5)
            .with_battery(WattHours::new(720.0))
    }

    fn apply_simple(ves: &mut VirtualEnergySystem, demand: Watts, intensity: f64) -> VesFlows {
        let desired = ves.desired_flows(demand, minute());
        let (flows, _) = ves.apply_flows(
            &desired,
            1.0,
            1.0,
            CarbonIntensity::new(intensity),
            minute(),
        );
        flows
    }

    #[test]
    fn grid_only_settlement_attributes_carbon() {
        let mut ves = VirtualEnergySystem::new(EnergyShare::grid_only());
        let flows = apply_simple(&mut ves, Watts::new(60.0), 300.0);
        assert_eq!(flows.grid_to_load, Watts::new(60.0));
        assert_eq!(flows.battery_to_load, Watts::ZERO);
        // 60 W for 1 min = 1 Wh = 0.001 kWh × 300 g/kWh = 0.3 g
        assert!((flows.carbon.grams() - 0.3).abs() < 1e-9);
        assert!(flows.is_conserved());
    }

    #[test]
    fn solar_first_battery_second_grid_last() {
        let mut ves = VirtualEnergySystem::new(solar_battery_share());
        ves.buffer_solar(Watts::new(30.0));
        ves.set_max_discharge(Watts::new(20.0));
        let flows = apply_simple(&mut ves, Watts::new(100.0), 200.0);
        assert_eq!(flows.solar_to_load, Watts::new(30.0));
        assert_eq!(flows.battery_to_load, Watts::new(20.0));
        assert_eq!(flows.grid_to_load, Watts::new(50.0));
        assert!(flows.is_conserved());
    }

    #[test]
    fn excess_solar_charges_battery_zero_carbon() {
        let share = solar_battery_share().with_initial_soc(0.5);
        let mut ves = VirtualEnergySystem::new(share);
        ves.buffer_solar(Watts::new(100.0));
        let flows = apply_simple(&mut ves, Watts::new(40.0), 400.0);
        assert_eq!(flows.solar_to_battery, Watts::new(60.0));
        assert_eq!(flows.carbon, Co2Grams::ZERO);
        assert!(flows.is_conserved());
    }

    #[test]
    fn full_battery_surrenders_surplus() {
        let mut ves = VirtualEnergySystem::new(solar_battery_share());
        ves.buffer_solar(Watts::new(100.0));
        let flows = apply_simple(&mut ves, Watts::new(40.0), 0.0);
        assert_eq!(flows.solar_to_battery, Watts::ZERO);
        assert_eq!(flows.solar_surplus, Watts::new(60.0));
        assert!(flows.is_conserved());
    }

    #[test]
    fn grid_supplements_charging_and_is_charged_carbon() {
        let share = solar_battery_share().with_initial_soc(0.5);
        let mut ves = VirtualEnergySystem::new(share);
        ves.set_charge_rate(Watts::new(120.0));
        ves.buffer_solar(Watts::new(100.0));
        // Demand 40 leaves 60 excess solar; charge rate 120 → 60 from grid.
        let flows = apply_simple(&mut ves, Watts::new(40.0), 100.0);
        assert_eq!(flows.solar_to_battery, Watts::new(60.0));
        assert_eq!(flows.grid_to_battery, Watts::new(60.0));
        // Carbon only for the grid share: 60 W·min = 1 Wh → 0.1 g.
        assert!((flows.carbon.grams() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn discharge_scale_shifts_to_grid() {
        let mut ves = VirtualEnergySystem::new(solar_battery_share());
        ves.set_max_discharge(Watts::new(100.0));
        let desired = ves.desired_flows(Watts::new(100.0), minute());
        assert_eq!(desired.discharge, Watts::new(100.0));
        let (flows, _) = ves.apply_flows(&desired, 1.0, 0.5, CarbonIntensity::new(100.0), minute());
        assert_eq!(flows.battery_to_load, Watts::new(50.0));
        assert_eq!(flows.grid_to_load, Watts::new(50.0));
        assert!(flows.is_conserved());
    }

    #[test]
    fn charge_scale_increases_surplus() {
        let share = solar_battery_share().with_initial_soc(0.5);
        let mut ves = VirtualEnergySystem::new(share);
        ves.buffer_solar(Watts::new(100.0));
        let desired = ves.desired_flows(Watts::ZERO, minute());
        assert_eq!(desired.charge_solar, Watts::new(100.0));
        let (flows, _) = ves.apply_flows(&desired, 0.25, 1.0, CarbonIntensity::new(0.0), minute());
        assert_eq!(flows.solar_to_battery, Watts::new(25.0));
        assert_eq!(flows.solar_surplus, Watts::new(75.0));
        assert!(flows.is_conserved());
    }

    #[test]
    fn grid_cap_sheds_charging_then_load() {
        let share = EnergyShare::grid_only()
            .with_battery(WattHours::new(720.0))
            .with_initial_soc(0.5)
            .with_grid_cap(Watts::new(80.0));
        let mut ves = VirtualEnergySystem::new(share);
        ves.set_charge_rate(Watts::new(50.0));
        ves.set_max_discharge(Watts::ZERO);
        let flows = apply_simple(&mut ves, Watts::new(100.0), 100.0);
        // 100 W load + 50 W charge requested, cap 80: charging fully shed,
        // then 20 W of load shed.
        assert_eq!(flows.grid_to_battery, Watts::ZERO);
        assert_eq!(flows.grid_to_load, Watts::new(80.0));
        assert_eq!(flows.unmet_demand, Watts::new(20.0));
        assert!(flows.is_conserved());
    }

    #[test]
    fn battery_full_and_empty_events_fire_once() {
        let share = solar_battery_share().with_initial_soc(0.5);
        let mut ves = VirtualEnergySystem::new(share);
        // Drain to empty.
        ves.set_max_discharge(Watts::new(10_000.0));
        let mut events = Vec::new();
        for _ in 0..300 {
            let desired = ves.desired_flows(Watts::new(720.0), minute());
            let (_, ev) = ves.apply_flows(&desired, 1.0, 1.0, CarbonIntensity::new(0.0), minute());
            events.extend(ev);
        }
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Notification::BatteryEmpty))
                .count(),
            1,
            "empty edge fires exactly once"
        );
        // Recharge to full.
        ves.set_charge_rate(Watts::new(180.0));
        let mut events = Vec::new();
        for _ in 0..600 {
            let desired = ves.desired_flows(Watts::ZERO, minute());
            let (_, ev) = ves.apply_flows(&desired, 1.0, 1.0, CarbonIntensity::new(0.0), minute());
            events.extend(ev);
        }
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Notification::BatteryFull))
                .count(),
            1,
            "full edge fires exactly once"
        );
    }

    #[test]
    fn redistribution_charges_battery() {
        let share = solar_battery_share().with_initial_soc(0.5);
        let mut ves = VirtualEnergySystem::new(share);
        let accepted = ves.accept_redistribution(Watts::new(50.0), minute());
        assert_eq!(accepted, Watts::new(50.0));
        assert_eq!(ves.last_flows().redistributed_in, Watts::new(50.0));
        // Full battery accepts nothing.
        let mut full = VirtualEnergySystem::new(solar_battery_share());
        assert_eq!(
            full.accept_redistribution(Watts::new(50.0), minute()),
            Watts::ZERO
        );
        // No battery: nothing accepted.
        let mut none = VirtualEnergySystem::new(EnergyShare::grid_only());
        assert_eq!(
            none.accept_redistribution(Watts::new(50.0), minute()),
            Watts::ZERO
        );
    }

    #[test]
    fn totals_accumulate() {
        let mut ves = VirtualEnergySystem::new(EnergyShare::grid_only());
        for _ in 0..60 {
            apply_simple(&mut ves, Watts::new(60.0), 1000.0);
        }
        let t = ves.totals();
        assert!((t.energy.watt_hours() - 60.0).abs() < 1e-9);
        assert!((t.grid_energy.watt_hours() - 60.0).abs() < 1e-9);
        // 60 Wh at 1000 g/kWh = 60 g.
        assert!((t.carbon.grams() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn max_discharge_clamped_to_virtual_battery() {
        let mut ves = VirtualEnergySystem::new(solar_battery_share());
        ves.set_max_discharge(Watts::new(100_000.0));
        assert_eq!(ves.max_discharge(), Watts::new(720.0)); // 1C of 720 Wh
                                                            // Without a battery, the setting pins to zero.
        let mut grid = VirtualEnergySystem::new(EnergyShare::grid_only());
        grid.set_max_discharge(Watts::new(100.0));
        assert_eq!(grid.max_discharge(), Watts::ZERO);
    }
}
