//! The application abstraction.
//!
//! Paper §3.1: "Applications register their `tick()` method with the
//! ecovisor as a callback function at startup. Within their `tick()`
//! method, applications can examine the characteristics of their power
//! supply ... and make adjustments to their power supply and demand."
//!
//! [`Application`] is that callback interface. [`Application::on_tick`]
//! is the periodic `tick()` upcall; [`Application::on_event`] receives
//! the asynchronous notifications of Table 2 (`notify_solar_change`,
//! `notify_carbon_change`, `notify_battery_full/empty`).
//!
//! Since the protocol redesign, upcalls receive an
//! [`EcovisorClient`] — the batching protocol handle — instead of a raw
//! `&mut dyn LibraryApi` trait object. The method surface is unchanged
//! (`launch_container`, `get_grid_carbon`, …), but every call now travels
//! as a wire-serializable [`crate::proto::EnergyRequest`], and
//! fire-and-forget setters coalesce into per-tick batches.

use crate::client::EcovisorClient;
use crate::event::Notification;

/// An application running on the ecovisor: typically a workload model
/// plus a carbon-management policy.
pub trait Application {
    /// Human-readable label used in experiment reports.
    fn label(&self) -> &str {
        "app"
    }

    /// Called once at registration, before the first tick. Launch the
    /// initial virtual cluster here.
    fn on_start(&mut self, _api: &mut EcovisorClient<'_>) {}

    /// The paper's `tick()` upcall, invoked every Δt.
    fn on_tick(&mut self, api: &mut EcovisorClient<'_>);

    /// Asynchronous notification upcall, delivered before `on_tick`.
    fn on_event(&mut self, _event: &Notification, _api: &mut EcovisorClient<'_>) {}

    /// `true` once the application has finished its work (batch jobs).
    /// Services that run forever keep the default `false`.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl Application for Noop {
        fn on_tick(&mut self, _api: &mut EcovisorClient<'_>) {}
    }

    #[test]
    fn defaults_are_sensible() {
        let app = Noop;
        assert_eq!(app.label(), "app");
        assert!(!app.is_done());
    }

    #[test]
    fn trait_is_object_safe() {
        let _boxed: Box<dyn Application> = Box::new(Noop);
    }
}
