//! Ecovisor configuration.

use carbon_intel::service::{CarbonService, ConstantCarbonService};
use container_cop::CopConfig;
use energy_system::battery::{Battery, BatterySpec};
use energy_system::grid::GridConnection;
use energy_system::solar::{SolarSource, TraceSolarSource};
use simkit::time::SimDuration;
use simkit::trace::Trace;
use simkit::units::CarbonIntensity;

/// What happens to excess virtual solar power once an application's
/// battery is full (§3.1: "Determining how to handle excess solar power
/// is a policy decision").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ExcessPolicy {
    /// Rely on the charge controller to curtail it (the paper's
    /// prototype default, which does not net-meter).
    #[default]
    Curtail,
    /// Net-meter it back to the grid (requires a net-metering grid
    /// connection).
    NetMeter,
    /// Reclaim and redistribute it to other applications with available
    /// virtual battery capacity, then curtail the remainder.
    Redistribute,
}

/// Builder for an [`crate::Ecovisor`].
///
/// Defaults model the paper's prototype: 1-minute ticks, a 16-node
/// microserver cluster, the 1,440 Wh battery bank, no solar array, an
/// unlimited grid, a flat 200 g/kWh carbon signal, and curtailment of
/// excess solar. Every component can be swapped.
pub struct EcovisorBuilder {
    /// Tick interval Δt.
    pub tick_interval: SimDuration,
    /// Cluster composition.
    pub cop: CopConfig,
    /// Solar power source.
    pub solar: Box<dyn SolarSource>,
    /// Physical battery bank.
    pub battery: Battery,
    /// Grid connection.
    pub grid: GridConnection,
    /// Carbon information service.
    pub carbon: Box<dyn CarbonService>,
    /// Excess-solar policy.
    pub excess: ExcessPolicy,
}

impl Default for EcovisorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EcovisorBuilder {
    /// Starts from the prototype defaults described above.
    pub fn new() -> Self {
        Self {
            tick_interval: SimDuration::from_minutes(1),
            cop: CopConfig::microserver_cluster(16),
            solar: Box::new(TraceSolarSource::new(Trace::constant(0.0))),
            battery: Battery::new_full(BatterySpec::paper_prototype()),
            grid: GridConnection::new(),
            carbon: Box::new(ConstantCarbonService::new(
                "flat",
                CarbonIntensity::new(200.0),
            )),
            excess: ExcessPolicy::Curtail,
        }
    }

    /// Sets the tick interval.
    pub fn tick_interval(mut self, dt: SimDuration) -> Self {
        self.tick_interval = dt;
        self
    }

    /// Sets the cluster composition.
    pub fn cluster(mut self, cop: CopConfig) -> Self {
        self.cop = cop;
        self
    }

    /// Sets the solar source.
    pub fn solar(mut self, solar: Box<dyn SolarSource>) -> Self {
        self.solar = solar;
        self
    }

    /// Sets the physical battery.
    pub fn battery(mut self, battery: Battery) -> Self {
        self.battery = battery;
        self
    }

    /// Sets the grid connection.
    pub fn grid(mut self, grid: GridConnection) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the carbon information service.
    pub fn carbon(mut self, carbon: Box<dyn CarbonService>) -> Self {
        self.carbon = carbon;
        self
    }

    /// Sets the excess-solar policy.
    pub fn excess(mut self, excess: ExcessPolicy) -> Self {
        self.excess = excess;
        self
    }

    /// Builds the ecovisor.
    pub fn build(self) -> crate::ecovisor::Ecovisor {
        crate::ecovisor::Ecovisor::from_builder(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_prototype() {
        let b = EcovisorBuilder::new();
        assert_eq!(b.tick_interval, SimDuration::from_minutes(1));
        assert_eq!(b.cop.servers.len(), 16);
        assert_eq!(b.excess, ExcessPolicy::Curtail);
        assert_eq!(
            b.battery.spec().capacity,
            simkit::units::WattHours::new(1440.0)
        );
    }

    #[test]
    fn builder_methods_chain() {
        let b = EcovisorBuilder::new()
            .tick_interval(SimDuration::from_minutes(5))
            .cluster(CopConfig::microserver_cluster(4))
            .excess(ExcessPolicy::Redistribute);
        assert_eq!(b.tick_interval, SimDuration::from_minutes(5));
        assert_eq!(b.cop.servers.len(), 4);
        assert_eq!(b.excess, ExcessPolicy::Redistribute);
    }
}
