//! Ecovisor error types.

use std::error::Error;
use std::fmt;

use container_cop::{AppId, ContainerId, CopError};

/// Errors returned by ecovisor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EcovisorError {
    /// The referenced application is not registered.
    UnknownApp(AppId),
    /// A container operation referenced a container the calling
    /// application does not own (isolation violation).
    NotOwner {
        /// Container that was targeted.
        container: ContainerId,
        /// Application that attempted the operation.
        app: AppId,
    },
    /// Registering an application would oversubscribe the physical
    /// energy system (solar fractions or battery capacity).
    ShareExceeded(String),
    /// The energy share failed validation.
    InvalidShare(String),
    /// An underlying COP operation failed.
    Cop(CopError),
    /// A protocol-level failure with no richer mapping (version
    /// mismatch, command on the query path, …).
    Protocol(String),
}

impl fmt::Display for EcovisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcovisorError::UnknownApp(app) => write!(f, "unknown application {app}"),
            EcovisorError::NotOwner { container, app } => {
                write!(f, "application {app} does not own container {container}")
            }
            EcovisorError::ShareExceeded(msg) => {
                write!(f, "physical energy system oversubscribed: {msg}")
            }
            EcovisorError::InvalidShare(msg) => write!(f, "invalid energy share: {msg}"),
            EcovisorError::Cop(e) => write!(f, "orchestration error: {e}"),
            EcovisorError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl Error for EcovisorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcovisorError::Cop(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CopError> for EcovisorError {
    fn from(e: CopError) -> Self {
        EcovisorError::Cop(e)
    }
}

/// Convenience alias for ecovisor results.
pub type Result<T> = std::result::Result<T, EcovisorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EcovisorError::NotOwner {
            container: ContainerId::new(3),
            app: AppId::new(1),
        };
        assert!(e.to_string().contains("does not own"));

        let cop_err = EcovisorError::from(CopError::UnknownContainer(ContainerId::new(9)));
        assert!(cop_err.source().is_some());
        assert!(EcovisorError::UnknownApp(AppId::new(0)).source().is_none());
    }
}
