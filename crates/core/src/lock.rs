//! Poison-tolerant lock helpers shared by the sharded dispatch paths.
//!
//! The ecovisor's concurrency model (see [`crate::shard`]) never holds a
//! lock across application code that can panic on another tenant's
//! behalf, but a panicking connection thread must still not wedge every
//! other tenant: all lock acquisitions in this crate recover from
//! poisoning by taking the guard anyway. Per-shard state is settled (and
//! therefore re-validated) at every tick boundary under the exclusive
//! settlement barrier, so a half-applied batch from a panicked thread
//! cannot corrupt cross-tenant invariants.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires a shared read guard, recovering from poisoning.
pub(crate) fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|p| p.into_inner())
}

/// Acquires an exclusive write guard, recovering from poisoning.
pub(crate) fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|p| p.into_inner())
}

/// Borrows the protected value through `&mut` — no locking cost; the
/// exclusive borrow is the proof no other thread holds the lock. The
/// settlement path uses this so the stop-the-world barrier pays nothing
/// per shard.
pub(crate) fn get_mut<T>(lock: &mut RwLock<T>) -> &mut T {
    lock.get_mut().unwrap_or_else(|p| p.into_inner())
}

/// Locks a mutex, recovering from poisoning.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}
