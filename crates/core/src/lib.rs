//! # ecovisor — a virtual energy system for carbon-efficient applications
//!
//! Reproduction of the core contribution of *"Ecovisor: A Virtual Energy
//! System for Carbon-Efficient Applications"* (ASPLOS 2023): a software
//! layer that virtualizes a physical energy system — grid connection,
//! solar array, battery bank — and exposes **software-defined visibility
//! and control of it directly to applications**, so each application can
//! handle clean energy's unreliability according to its own requirements.
//!
//! ## Architecture
//!
//! * [`Ecovisor`] owns the physical components (from `energy-system`),
//!   the container orchestration platform (from `container-cop`), the
//!   carbon information service (from `carbon-intel`), and the telemetry
//!   store (from `power-telemetry`).
//! * Each registered application receives a [`VirtualEnergySystem`] —
//!   virtual grid + virtual battery + virtual solar share — settled every
//!   tick with the paper's supply priority (solar → battery → grid) and
//!   per-tick carbon attribution.
//! * Applications interact through the narrow Table 1 API
//!   ([`EcovisorApi`]) and the Table 2 library layer ([`LibraryApi`]),
//!   receive the periodic `tick()` upcall via [`Application::on_tick`],
//!   and asynchronous notifications via [`Application::on_event`].
//! * [`Simulation`] drives the tick protocol deterministically.
//!
//! ## Example
//!
//! ```
//! use container_cop::ContainerSpec;
//! use ecovisor::{
//!     Application, EcovisorBuilder, EnergyShare, LibraryApi, Simulation,
//! };
//!
//! struct Busy;
//! impl Application for Busy {
//!     fn on_start(&mut self, api: &mut dyn ecovisor::LibraryApi) {
//!         let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
//!         api.set_container_demand(c, 1.0).unwrap();
//!     }
//!     fn on_tick(&mut self, api: &mut dyn LibraryApi) {
//!         // React to carbon intensity here (the paper's tick() upcall).
//!         let _intensity = api.get_grid_carbon();
//!     }
//! }
//!
//! let mut sim = Simulation::new(EcovisorBuilder::new().build());
//! let app = sim.add_app("busy", EnergyShare::grid_only(), Box::new(Busy)).unwrap();
//! sim.run_ticks(10);
//! assert!(sim.eco().app_totals(app).unwrap().carbon.grams() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod app;
pub mod config;
pub mod ecovisor;
pub mod error;
pub mod event;
pub mod share;
pub mod sim;
pub mod ves;

pub use api::{EcovisorApi, LibraryApi};
pub use app::Application;
pub use config::{EcovisorBuilder, ExcessPolicy};
pub use ecovisor::{Ecovisor, ScopedApi, SystemFlows};
pub use error::{EcovisorError, Result};
pub use event::{Notification, NotifyConfig};
pub use share::EnergyShare;
pub use sim::Simulation;
pub use ves::{VesFlows, VesTotals, VirtualEnergySystem};

// Re-export the identifiers applications deal with.
pub use container_cop::{AppId, ContainerId, ContainerSpec};
