//! # ecovisor — a virtual energy system for carbon-efficient applications
//!
//! Reproduction of the core contribution of *"Ecovisor: A Virtual Energy
//! System for Carbon-Efficient Applications"* (ASPLOS 2023): a software
//! layer that virtualizes a physical energy system — grid connection,
//! solar array, battery bank — and exposes **software-defined visibility
//! and control of it directly to applications**, so each application can
//! handle clean energy's unreliability according to its own requirements.
//!
//! ## Protocol-first architecture
//!
//! The application-facing API is a **versioned, wire-serializable
//! command/query protocol** ([`proto`]): every Table 1 setter/getter,
//! §3.1 container-management call, and Table 2 library function is an
//! [`EnergyRequest`] variant answered by an [`EnergyResponse`], carried
//! in [`RequestBatch`] envelopes tagged with the protocol version and the
//! issuing application's [`AppId`] scope. Three surfaces sit on that one
//! hot path:
//!
//! * [`EcovisorClient`] ([`client`]) — the **primary handle**.
//!   Applications receive it in their `tick()` upcall; it batches
//!   fire-and-forget commands and flushes them at tick boundaries (or
//!   before any read), so call sites keep the old ergonomic method names
//!   while all traffic travels as protocol messages.
//! * [`EcovisorApi`]/[`LibraryApi`] ([`api`]) — the original trait
//!   surface, kept as a thin compatibility façade: [`ScopedApi`]
//!   translates each trait call into exactly one request.
//! * Raw batches — [`Ecovisor::dispatch_batch`] accepts a
//!   [`RequestBatch`] directly; with [`Ecovisor::enable_protocol_trace`]
//!   a run's full API traffic can be recorded and
//!   [`replayed`](Ecovisor::replay).
//!
//! Scope enforcement lives in the dispatcher ([`dispatch`]), in one
//! place for all three surfaces: a request that names another tenant's
//! container comes back as an [`EnergyResponse::Err`] carrying
//! [`ProtoError::Scope`] — an error value on the wire, never a panic.
//!
//! ## Architecture
//!
//! (The full picture — crate map, data-flow diagram, locking
//! invariants — is in `docs/ARCHITECTURE.md`; the wire format is in
//! `docs/PROTOCOL.md`.)
//!
//! * [`Ecovisor`] owns the physical components (from `energy_system`),
//!   the container orchestration platform (from `container_cop`), the
//!   carbon information service (from `carbon_intel`), and the telemetry
//!   store (from `power_telemetry`). Per-app state is **sharded** behind
//!   per-app locks, so dispatch takes `&self` and tenants execute in
//!   parallel; [`ShardedEcovisor`] ([`shard`]) is the concurrent
//!   deployment wrapper, with tick settlement as the sole cross-app
//!   barrier. The TCP transport ([`transport`]) serves every connection
//!   against one shared [`ShardedEcovisor`].
//! * Each registered application receives a [`VirtualEnergySystem`] —
//!   virtual grid + virtual battery + virtual solar share — settled every
//!   tick with the paper's supply priority (solar → battery → grid) and
//!   per-tick carbon attribution.
//! * Applications interact through the protocol, receive the periodic
//!   `tick()` upcall via [`Application::on_tick`], and asynchronous
//!   notifications via [`Application::on_event`].
//! * [`Simulation`] drives the tick protocol deterministically and
//!   flushes each application's request batch at the tick boundary.
//!
//! ## Example
//!
//! ```
//! use container_cop::ContainerSpec;
//! use ecovisor::{
//!     Application, EcovisorBuilder, EcovisorClient, EnergyClient, EnergyShare, Simulation,
//! };
//!
//! struct Busy;
//! impl Application for Busy {
//!     fn on_start(&mut self, api: &mut EcovisorClient<'_>) {
//!         let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
//!         api.set_container_demand(c, 1.0).unwrap();
//!     }
//!     fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
//!         // React to carbon intensity here (the paper's tick() upcall).
//!         let _intensity = api.get_grid_carbon();
//!     }
//! }
//!
//! let mut sim = Simulation::new(EcovisorBuilder::new().build());
//! let app = sim.add_app("busy", EnergyShare::grid_only(), Box::new(Busy)).unwrap();
//! sim.run_ticks(10);
//! assert!(sim.eco().app_totals(app).unwrap().carbon.grams() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod app;
pub mod client;
pub mod config;
pub mod dispatch;
pub mod ecovisor;
pub mod error;
pub mod event;
pub mod federation;
mod lock;
pub mod obs;
pub mod proto;
pub mod replay;
pub mod shard;
pub mod share;
pub mod sim;
pub mod snapshot;
pub mod transport;
pub mod ves;

pub use api::{EcovisorApi, LibraryApi};
pub use app::Application;
pub use client::{EcovisorClient, EnergyClient, EventHandler};
pub use config::{EcovisorBuilder, ExcessPolicy};
pub use dispatch::{ProtocolTrace, TraceEntry};
pub use ecovisor::{Ecovisor, ScopedApi, SystemFlows};
pub use error::{EcovisorError, Result};
pub use event::{EventFilter, Notification, NotifyConfig, OutboxPolicy};
pub use federation::{FedAppView, TenantSnapshot};
pub use obs::{MetricsSnapshot, ObsHub};
pub use proto::{
    ControlFrame, EnergyRequest, EnergyResponse, EventFrame, Frame, ProtoError, RequestBatch,
    ResponseBatch, StatsReport, PROTOCOL_V1, PROTOCOL_VERSION, SUPPORTED_VERSIONS,
};
pub use replay::{digest, ReplayReport};
pub use shard::ShardedEcovisor;
pub use share::EnergyShare;
pub use sim::Simulation;
pub use snapshot::{AppSnapshot, Snapshot, SnapshotError, SNAPSHOT_FORMAT};
pub use transport::{
    ClientHello, ClientHelloV2, CredentialRegistry, EcovisorServer, RemoteEcovisorClient,
    ServerHandle, ServerHello, ServerStats, SharedEcovisor, WireCodec,
};
pub use ves::{VesFlows, VesTotals, VirtualEnergySystem};

// Re-export the identifiers applications deal with.
pub use container_cop::{AppId, ContainerId, ContainerSpec};
