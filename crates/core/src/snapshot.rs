//! Versioned checkpoint/restore of complete ecovisor state.
//!
//! The ecovisor virtualizes the energy system *in software*, which means
//! all of its state — per-app shards, COP container/power-cap state,
//! telemetry, outboxes, battery charge, clock position — is in-memory
//! and lost on restart. A [`Snapshot`] captures every bit of that
//! dynamic state so it can be written to disk, shipped over the wire
//! (see the v2 `Snapshot`/`Restore` admin requests in [`crate::proto`]),
//! or embedded in a harness artifact as a mid-day checkpoint.
//!
//! ## Equivalence contract
//!
//! A restored ecovisor is **bit-identical going forward**: driven with
//! the same subsequent traffic it produces the same [`VesTotals`], the
//! same event frames, and the same replay digests as the original. The
//! harness enforces this for every corpus day (restore from each
//! embedded checkpoint, replay the remainder, compare against the
//! uninterrupted run — across both codecs and both dispatch paths).
//!
//! ## What is and is not captured
//!
//! Captured: the tick clock (whose position *is* the solar/carbon trace
//! cursor — both services are pure functions of simulated time), carbon
//! intensity (current and previous tick), the physical battery, grid
//! meter and PSU, the full COP ([`CopSnapshot`]), the telemetry store,
//! and every per-app shard including undelivered outbox events (drained
//! into the snapshot so a subscriber sees each edge event exactly once
//! across a checkpoint/restore boundary).
//!
//! Not captured: the solar/carbon *traces* themselves, the placement
//! policy, and the power models (all static configuration the restoring
//! process must supply via its [`EcovisorBuilder`] — guarded by an
//! environment fingerprint), plus the protocol trace recorder (a restore
//! never adopts the source's recording state).
//!
//! ## Versioning rules
//!
//! [`SNAPSHOT_FORMAT`] names the layout of the `Snapshot` structure
//! itself and is bumped on any incompatible change; restore rejects
//! unknown formats outright. The embedded protocol version records which
//! protocol era wrote the snapshot; restore rejects versions outside
//! [`SUPPORTED_VERSIONS`]. See `docs/SNAPSHOT.md` for the full rules.

use std::collections::BTreeSet;
use std::sync::RwLock;

use container_cop::{AppId, ContainerId, CopSnapshot, ServerSpec};
use energy_system::battery::{Battery, BatterySpec};
use energy_system::grid::GridConnection;
use energy_system::psu::ProgrammablePsu;
use power_telemetry::Tsdb;
use simkit::time::{SimDuration, TickClock};
use simkit::units::{CarbonIntensity, CarbonRate, Co2Grams, WattHours};

use crate::config::{EcovisorBuilder, ExcessPolicy};
use crate::ecovisor::{AppState, Ecovisor, SystemFlows};
use crate::error::EcovisorError;
use crate::event::{Notification, NotifyConfig, OutboxPolicy};
use crate::lock;
use crate::proto::{PROTOCOL_VERSION, SUPPORTED_VERSIONS};
use crate::replay::digest;
use crate::ves::{VesTotals, VirtualEnergySystem};

/// Version of the [`Snapshot`] layout itself. Bumped on any change that
/// an older reader could misinterpret; [`Ecovisor::apply_snapshot`]
/// rejects snapshots whose format it does not know.
pub const SNAPSHOT_FORMAT: u32 = 1;

/// Complete dynamic state of one application shard.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AppSnapshot {
    /// The application's id.
    pub app: AppId,
    /// Display name.
    pub name: String,
    /// The virtual energy system, including cumulative totals and
    /// edge-trigger state.
    pub ves: VirtualEnergySystem,
    /// Notification thresholds.
    pub notify: NotifyConfig,
    /// Bounded-outbox policy.
    pub outbox: OutboxPolicy,
    /// Undelivered notifications at capture time. Restoring reinstates
    /// them verbatim, so each event is still delivered exactly once.
    pub pending_events: Vec<Notification>,
    /// Carbon-rate limit (Table 2 `set_carbon_rate`), if set.
    pub carbon_rate_limit: Option<CarbonRate>,
    /// Carbon budget (Table 2 `set_carbon_budget`), if set.
    pub carbon_budget: Option<Co2Grams>,
    /// Containers carrying an ecovisor-installed carbon cap.
    pub carbon_capped: Vec<ContainerId>,
    /// Edge-trigger state for [`Notification::BudgetExhausted`].
    pub budget_exhausted: bool,
}

/// A versioned, serializable checkpoint of a whole ecovisor.
///
/// Produced by [`Ecovisor::snapshot`] (inside the settlement barrier),
/// reinstated by [`Ecovisor::apply_snapshot`] or the
/// [`Ecovisor::restore`] constructor. Serializes through either wire
/// codec; [`Snapshot::from_bytes`] auto-detects which one wrote it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Snapshot layout version ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Protocol version of the writing process.
    pub protocol_version: u16,
    /// Number of fully settled ticks at capture time (equals the
    /// embedded clock's tick index).
    pub tick: u64,
    /// The tick clock. Restoring it repositions the solar and carbon
    /// trace cursors, which are pure functions of simulated time.
    pub clock: TickClock,
    /// Fingerprint of the *static* environment (tick interval, battery
    /// spec, server specs, excess policy). Restore refuses a snapshot
    /// whose fingerprint differs from the receiving process's.
    pub env_digest: u64,
    /// Carbon intensity sampled at the start of the current tick.
    pub intensity: CarbonIntensity,
    /// Previous tick's intensity (edge state for carbon notifications).
    pub prev_intensity: CarbonIntensity,
    /// System flows from the most recent settlement.
    pub last_system_flows: SystemFlows,
    /// The physical battery bank.
    pub physical_battery: Battery,
    /// The grid meter.
    pub grid: GridConnection,
    /// The validation PSU.
    pub psu: ProgrammablePsu,
    /// The container orchestration platform's dynamic state.
    pub cop: CopSnapshot,
    /// The full telemetry store.
    pub tsdb: Tsdb,
    /// Every registered application's shard, in id order.
    pub apps: Vec<AppSnapshot>,
    /// Next application id to allocate.
    pub next_app: u32,
}

impl Snapshot {
    /// FNV-1a digest over the binary encoding — a cheap equality check
    /// for two snapshots (the structure holds floats, so digest equality
    /// means bit-identical state).
    pub fn digest(&self) -> u64 {
        digest(self)
    }

    /// Encodes with the compact binary codec (the canonical at-rest and
    /// on-wire form).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde::binary::to_bytes(self)
    }

    /// Encodes as JSON (human-inspectable form).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Decodes from either codec, auto-detected the same way the
    /// harness detects artifact codecs: JSON begins with `{`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Decode`] when the bytes parse as neither codec.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.first() == Some(&b'{') {
            let text = std::str::from_utf8(bytes)
                .map_err(|e| SnapshotError::Decode(format!("invalid utf-8: {e}")))?;
            serde::json::from_str(text).map_err(|e| SnapshotError::Decode(e.to_string()))
        } else {
            serde::binary::from_bytes(bytes).map_err(|e| SnapshotError::Decode(e.to_string()))
        }
    }

    /// Per-app cumulative totals embedded in the snapshot, in id order
    /// (convenience for equivalence checks).
    pub fn app_totals(&self) -> Vec<(AppId, VesTotals)> {
        self.apps.iter().map(|a| (a.app, *a.ves.totals())).collect()
    }
}

/// Why a snapshot could not be restored (or decoded).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot layout version is not understood.
    Format {
        /// The format this build understands.
        expected: u32,
        /// The format the snapshot declares.
        got: u32,
    },
    /// The snapshot was written under a protocol version this build does
    /// not support.
    Protocol(u16),
    /// The receiving process's static environment (tick interval,
    /// battery spec, cluster composition, excess policy) differs from
    /// the writer's.
    Environment(String),
    /// The snapshot is internally inconsistent.
    Structure(String),
    /// The bytes failed to decode as a snapshot in either codec.
    Decode(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Format { expected, got } => {
                write!(
                    f,
                    "unknown snapshot format {got} (this build reads {expected})"
                )
            }
            SnapshotError::Protocol(v) => {
                write!(f, "snapshot written under unsupported protocol version {v}")
            }
            SnapshotError::Environment(msg) => write!(f, "environment mismatch: {msg}"),
            SnapshotError::Structure(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::Decode(msg) => write!(f, "snapshot decode failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for EcovisorError {
    fn from(e: SnapshotError) -> Self {
        EcovisorError::Protocol(e.to_string())
    }
}

/// The static configuration a snapshot does *not* carry, digested into
/// [`Snapshot::env_digest`] so restore can refuse a mismatched host.
#[derive(serde::Serialize)]
struct EnvFingerprint {
    tick_interval: SimDuration,
    battery: BatterySpec,
    servers: Vec<ServerSpec>,
    excess: ExcessPolicy,
}

impl Ecovisor {
    /// Digest of the static environment (see [`EnvFingerprint`]). Shared
    /// with the per-tenant extraction/grafting path
    /// ([`crate::federation`]), which validates the same fingerprint.
    pub(crate) fn env_fingerprint(&self) -> u64 {
        let servers: Vec<ServerSpec> = lock::read(&self.cop)
            .servers()
            .iter()
            .map(|s| *s.spec())
            .collect();
        digest(&EnvFingerprint {
            tick_interval: self.clock.interval(),
            battery: *self.physical_battery.spec(),
            servers,
            excess: self.excess,
        })
    }

    /// Captures the complete dynamic state of this ecovisor.
    ///
    /// Takes `&mut self` deliberately: exclusive access *is* the
    /// settlement barrier, so a snapshot can never observe a
    /// half-settled tick, and the shard/COP/TSDB locks cost nothing
    /// (`RwLock::get_mut`). On a deployed instance go through
    /// [`crate::shard::ShardedEcovisor::snapshot`], which takes the
    /// barrier for you.
    ///
    /// Undelivered outbox events are captured verbatim (not consumed):
    /// the original keeps delivering them, and a process restored from
    /// the snapshot delivers the same events exactly once.
    pub fn snapshot(&mut self) -> Snapshot {
        let obs_start = std::time::Instant::now();
        let env_digest = self.env_fingerprint();
        let cop = lock::get_mut(&mut self.cop).snapshot();
        let tsdb = lock::get_mut(&mut self.tsdb).clone();
        let mut apps = Vec::with_capacity(self.apps.len());
        for (&id, shard) in self.apps.iter_mut() {
            let s = lock::get_mut(shard);
            apps.push(AppSnapshot {
                app: id,
                name: s.name.clone(),
                ves: s.ves.clone(),
                notify: s.notify,
                outbox: s.outbox,
                pending_events: s.pending_events.clone(),
                carbon_rate_limit: s.carbon_rate_limit,
                carbon_budget: s.carbon_budget,
                carbon_capped: s.carbon_capped.clone(),
                budget_exhausted: s.budget_exhausted,
            });
        }
        let snap = Snapshot {
            format: SNAPSHOT_FORMAT,
            protocol_version: PROTOCOL_VERSION,
            tick: self.clock.tick_index(),
            clock: self.clock.clone(),
            env_digest,
            intensity: self.intensity,
            prev_intensity: self.prev_intensity,
            last_system_flows: self.last_system_flows,
            physical_battery: self.physical_battery.clone(),
            grid: self.grid.clone(),
            psu: self.psu.clone(),
            cop,
            tsdb,
            apps,
            next_app: self.next_app,
        };
        if let Some(hub) = self.obs() {
            hub.core
                .snapshot_capture
                .record_duration(obs_start.elapsed());
        }
        snap
    }

    /// Reinstates a snapshot into this ecovisor, replacing all dynamic
    /// state. The receiving instance must have been built from the same
    /// static configuration (same tick interval, battery spec, cluster
    /// composition, excess policy, and solar/carbon traces) — the first
    /// four are enforced via the environment fingerprint; the traces
    /// cannot be fingerprinted (they are behind trait objects) and are
    /// the caller's responsibility.
    ///
    /// Protocol tracing state is left untouched: a restore never adopts
    /// the source's recording.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Format`] / [`SnapshotError::Protocol`] on
    /// version mismatch, [`SnapshotError::Environment`] when the static
    /// configuration differs, [`SnapshotError::Structure`] when the
    /// snapshot is internally inconsistent (out-of-range ids,
    /// oversubscribed shares, clock/tick disagreement).
    pub fn apply_snapshot(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let obs_start = std::time::Instant::now();
        if snap.format != SNAPSHOT_FORMAT {
            return Err(SnapshotError::Format {
                expected: SNAPSHOT_FORMAT,
                got: snap.format,
            });
        }
        if !SUPPORTED_VERSIONS.contains(&snap.protocol_version) {
            return Err(SnapshotError::Protocol(snap.protocol_version));
        }
        if snap.clock.tick_index() != snap.tick {
            return Err(SnapshotError::Structure(format!(
                "declared tick {} disagrees with clock tick {}",
                snap.tick,
                snap.clock.tick_index()
            )));
        }
        if snap.env_digest != self.env_fingerprint() {
            return Err(SnapshotError::Environment(
                "tick interval, battery spec, cluster composition, or excess policy \
                 differs from the snapshotting process"
                    .into(),
            ));
        }

        // Structural validation before any state is touched, so a bad
        // snapshot never leaves the ecovisor half-restored.
        let mut prev = 0u32;
        for a in &snap.apps {
            let v = a.app.value();
            if v == 0 {
                return Err(SnapshotError::Structure("app id 0 is reserved".into()));
            }
            if v <= prev {
                return Err(SnapshotError::Structure(
                    "app ids must be strictly ascending".into(),
                ));
            }
            if v >= snap.next_app {
                return Err(SnapshotError::Structure(format!(
                    "app id {v} is at or above next_app {}",
                    snap.next_app
                )));
            }
            prev = v;
        }
        let known: BTreeSet<ContainerId> = snap.cop.containers.iter().map(|c| c.id()).collect();
        for a in &snap.apps {
            for c in &a.carbon_capped {
                if !known.contains(c) {
                    return Err(SnapshotError::Structure(format!(
                        "app {} carbon-caps unknown container {c}",
                        a.app
                    )));
                }
            }
        }
        let solar_total: f64 = snap.apps.iter().map(|a| a.ves.share().solar_fraction).sum();
        if solar_total > 1.0 + 1e-9 {
            return Err(SnapshotError::Structure(format!(
                "solar fractions sum to {solar_total:.3}"
            )));
        }
        let battery_total: WattHours = snap
            .apps
            .iter()
            .map(|a| a.ves.share().battery_capacity)
            .sum();
        if battery_total > snap.physical_battery.spec().capacity {
            return Err(SnapshotError::Structure(format!(
                "battery capacity shares sum to {battery_total}, over the physical bank"
            )));
        }

        lock::get_mut(&mut self.cop)
            .restore(&snap.cop)
            .map_err(SnapshotError::Structure)?;
        *lock::get_mut(&mut self.tsdb) = snap.tsdb.clone();
        self.clock = snap.clock.clone();
        self.intensity = snap.intensity;
        self.prev_intensity = snap.prev_intensity;
        self.last_system_flows = snap.last_system_flows;
        self.physical_battery = snap.physical_battery.clone();
        self.grid = snap.grid.clone();
        self.psu = snap.psu.clone();
        self.apps = snap
            .apps
            .iter()
            .map(|a| {
                (
                    a.app,
                    RwLock::new(AppState {
                        name: a.name.clone(),
                        ves: a.ves.clone(),
                        notify: a.notify,
                        outbox: a.outbox,
                        pending_events: a.pending_events.clone(),
                        carbon_rate_limit: a.carbon_rate_limit,
                        carbon_budget: a.carbon_budget,
                        carbon_capped: a.carbon_capped.clone(),
                        budget_exhausted: a.budget_exhausted,
                    }),
                )
            })
            .collect();
        self.next_app = snap.next_app;
        // The hub survives a restore (it is runtime state, not snapshot
        // state), so timings from before and after a restore land in the
        // same series.
        if let Some(hub) = self.obs() {
            hub.core
                .snapshot_restore
                .record_duration(obs_start.elapsed());
        }
        Ok(())
    }

    /// Builds a fresh ecovisor from `builder` and reinstates `snap` into
    /// it — the one-call "seed a new process from a checkpoint" path.
    ///
    /// # Errors
    ///
    /// Everything [`Ecovisor::apply_snapshot`] rejects.
    pub fn restore(builder: EcovisorBuilder, snap: &Snapshot) -> Result<Ecovisor, SnapshotError> {
        let mut eco = builder.build();
        eco.apply_snapshot(snap)?;
        Ok(eco)
    }
}
