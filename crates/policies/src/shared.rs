//! Interior-mutable stat handles.
//!
//! Applications live inside the [`ecovisor::Simulation`] as boxed trait
//! objects; experiments need their per-app results (finish times, SLO
//! violations) after — or during — a run. [`Shared`] is a cheap
//! `Rc<RefCell<T>>` handle the experiment clones before handing the app
//! to the simulation. Simulations are single-threaded by design, so `Rc`
//! is sufficient.

use std::cell::RefCell;
use std::rc::Rc;

/// Shared, interior-mutable handle to experiment-visible state.
pub type Shared<T> = Rc<RefCell<T>>;

/// Creates a new shared handle.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_state() {
        let a = shared(1u32);
        let b = Rc::clone(&a);
        *b.borrow_mut() = 7;
        assert_eq!(*a.borrow(), 7);
    }
}
