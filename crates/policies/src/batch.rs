//! §5.1 batch-job policies: carbon-agnostic, suspend-resume
//! (WaitAWhile), and Wait&Scale.
//!
//! "We compare this suspend-resume policy to a new Wait&Scale (W&S)
//! policy we developed, which suspends execution above a threshold and
//! opportunistically scales up resource (and energy) usage when carbon
//! emissions are below the threshold. Wait&Scale is an
//! application-specific policy, as different applications have different
//! optimal scale-up factors, which the system may not know." (§5.1)

use container_cop::ContainerSpec;
use ecovisor::{Application, EcovisorClient, EnergyClient};
use simkit::time::SimTime;
use simkit::units::CarbonIntensity;
use workloads::batch::BatchJob;

use crate::shared::{shared, Shared};

/// Which §5.1 policy drives the job.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BatchMode {
    /// Run at the baseline allocation regardless of carbon intensity.
    CarbonAgnostic,
    /// System-level WaitAWhile: suspend above the threshold, resume at
    /// baseline below it.
    SuspendResume {
        /// Carbon threshold (a percentile of the intensity trace).
        threshold: CarbonIntensity,
    },
    /// Application-specific Wait&Scale: suspend above the threshold,
    /// scale out to `scale × baseline` containers below it.
    WaitAndScale {
        /// Carbon threshold (a percentile of the intensity trace).
        threshold: CarbonIntensity,
        /// Scale-up factor (2, 3, or 4 in the paper).
        scale: u32,
    },
}

/// Per-run results an experiment can read out.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchStats {
    /// Tick-start time of the first tick at/after arrival.
    pub started_at: Option<SimTime>,
    /// Tick-start time of the tick in which the job completed.
    pub finished_at: Option<SimTime>,
    /// Number of ticks the job spent suspended/waiting after arrival.
    pub waiting_ticks: u64,
    /// Number of ticks the job spent running.
    pub running_ticks: u64,
}

impl BatchStats {
    /// Wall-clock runtime in hours (arrival to completion), if finished.
    pub fn runtime_hours(&self) -> Option<f64> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some((f.as_secs() - s.as_secs()) as f64 / 3600.0),
            _ => None,
        }
    }
}

/// A batch application (ML training or BLAST) under a §5.1 policy.
pub struct BatchApp {
    label: String,
    job: BatchJob,
    mode: BatchMode,
    /// Number of quad-core containers at the baseline allocation.
    baseline_containers: u32,
    /// Cores per container.
    container_cores: u32,
    arrival: SimTime,
    stats: Shared<BatchStats>,
}

impl BatchApp {
    /// Creates a batch application.
    ///
    /// `baseline_containers` × `container_cores` is the baseline
    /// allocation (ML: 1 × 4 cores; BLAST: 2 × 4 cores).
    pub fn new(
        label: impl Into<String>,
        job: BatchJob,
        mode: BatchMode,
        baseline_containers: u32,
        container_cores: u32,
    ) -> Self {
        Self {
            label: label.into(),
            job,
            mode,
            baseline_containers,
            container_cores,
            arrival: SimTime::EPOCH,
            stats: shared(BatchStats::default()),
        }
    }

    /// Delays the job's arrival (the paper randomizes arrivals across
    /// ten runs).
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Handle to the run statistics.
    pub fn stats(&self) -> Shared<BatchStats> {
        Shared::clone(&self.stats)
    }

    /// The containers this mode wants while running.
    fn target_containers(&self, below_threshold: bool) -> u32 {
        match self.mode {
            BatchMode::CarbonAgnostic => self.baseline_containers,
            BatchMode::SuspendResume { .. } => {
                if below_threshold {
                    self.baseline_containers
                } else {
                    0
                }
            }
            BatchMode::WaitAndScale { scale, .. } => {
                if below_threshold {
                    self.baseline_containers * scale
                } else {
                    0
                }
            }
        }
    }

    fn below_threshold(&self, api: &mut EcovisorClient<'_>) -> bool {
        match self.mode {
            BatchMode::CarbonAgnostic => true,
            BatchMode::SuspendResume { threshold } | BatchMode::WaitAndScale { threshold, .. } => {
                api.get_grid_carbon() <= threshold
            }
        }
    }

    /// Adjusts the running container count to `target` by launching or
    /// stopping (horizontal scaling).
    fn scale_to(&mut self, api: &mut EcovisorClient<'_>, target: u32) {
        let ids = api.container_ids();
        let current = ids.len() as u32;
        if current < target {
            for _ in 0..(target - current) {
                let spec = ContainerSpec::with_cores(self.container_cores);
                // Capacity exhaustion is surfaced as simply not scaling
                // further — the COP is the authority.
                if api.launch_container(spec).is_err() {
                    break;
                }
            }
        } else if current > target {
            for id in ids.iter().rev().take((current - target) as usize) {
                let _ = api.stop_container(*id);
            }
        }
    }
}

impl Application for BatchApp {
    fn label(&self) -> &str {
        &self.label
    }

    fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
        if self.job.is_done() {
            return;
        }
        let now = api.now();
        if now < self.arrival {
            return;
        }
        let mut stats = self.stats.borrow_mut();
        if stats.started_at.is_none() {
            stats.started_at = Some(now);
        }

        let below = self.below_threshold(api);
        let target = self.target_containers(below);
        drop(stats);
        self.scale_to(api, target);

        let ids = api.container_ids();
        let allocated_cores: f64 = ids.len() as f64 * f64::from(self.container_cores);
        if ids.is_empty() {
            self.stats.borrow_mut().waiting_ticks += 1;
            return;
        }

        // Demand reflects the scaling curve's busy fraction: sync/queue
        // overhead shows up as idle CPU, not as busy-spinning.
        let utilization = self.job.target_utilization(allocated_cores);
        for id in &ids {
            let _ = api.set_container_demand(*id, utilization);
        }

        let effective = api.effective_cores();
        let dt = api.tick_interval();
        self.job.advance(allocated_cores, effective, dt);
        self.stats.borrow_mut().running_ticks += 1;

        if self.job.is_done() {
            for id in api.container_ids() {
                let _ = api.stop_container(id);
            }
            self.stats.borrow_mut().finished_at = Some(now);
        }
    }

    fn is_done(&self) -> bool {
        self.job.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_intel::service::TraceCarbonService;
    use container_cop::CopConfig;
    use ecovisor::{EcovisorBuilder, EnergyShare, Simulation};
    use simkit::time::SimDuration;
    use simkit::trace::Trace;
    use workloads::scaling::LinearScaling;

    fn flat_carbon(v: f64) -> Box<TraceCarbonService> {
        Box::new(TraceCarbonService::new("flat", Trace::constant(v)))
    }

    fn square_wave_carbon(low: f64, high: f64, period_min: u64) -> Box<TraceCarbonService> {
        let half = (period_min / 2) as usize;
        let mut samples = vec![low; half];
        samples.extend(vec![high; half]);
        Box::new(TraceCarbonService::new(
            "wave",
            Trace::from_samples(samples, SimDuration::from_minutes(1))
                .with_extend(simkit::trace::Extend::Cycle),
        ))
    }

    fn sim_with(carbon: Box<TraceCarbonService>) -> Simulation {
        Simulation::new(
            EcovisorBuilder::new()
                .cluster(CopConfig::microserver_cluster(16))
                .carbon(carbon)
                .build(),
        )
    }

    #[test]
    fn carbon_agnostic_runs_straight_through() {
        let mut sim = sim_with(flat_carbon(300.0));
        // 1 core-hour on 4 cores = 15 minutes.
        let job = BatchJob::new(1.0, Box::new(LinearScaling));
        let app = BatchApp::new("agnostic", job, BatchMode::CarbonAgnostic, 1, 4);
        let stats = app.stats();
        sim.add_app("a", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        let ticks = sim.run_until_done(10_000);
        assert_eq!(ticks, 15);
        let s = stats.borrow();
        assert_eq!(s.running_ticks, 15);
        assert_eq!(s.waiting_ticks, 0);
        assert!((s.runtime_hours().unwrap() - 14.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn suspend_resume_waits_out_high_carbon() {
        // Carbon alternates 100 (30 min) / 400 (30 min); threshold 200.
        let mut sim = sim_with(square_wave_carbon(100.0, 400.0, 60));
        let job = BatchJob::new(4.0, Box::new(LinearScaling)); // 1 h at 4 cores
        let app = BatchApp::new(
            "sr",
            job,
            BatchMode::SuspendResume {
                threshold: CarbonIntensity::new(200.0),
            },
            1,
            4,
        );
        let stats = app.stats();
        sim.add_app("a", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        let ticks = sim.run_until_done(10_000);
        // 60 running minutes at a 50% duty cycle ≈ 90 total (first window
        // is low-carbon).
        assert!((85..=95).contains(&ticks), "took {ticks} ticks");
        let s = stats.borrow();
        assert_eq!(s.running_ticks, 60);
        assert!(s.waiting_ticks >= 25);
    }

    #[test]
    fn wait_and_scale_runs_faster_than_suspend_resume() {
        let run = |mode: BatchMode| -> u64 {
            let mut sim = sim_with(square_wave_carbon(100.0, 400.0, 60));
            let job = BatchJob::new(4.0, Box::new(LinearScaling));
            let app = BatchApp::new("b", job, mode, 1, 4);
            sim.add_app("a", EnergyShare::grid_only(), Box::new(app))
                .unwrap();
            sim.run_until_done(10_000)
        };
        let threshold = CarbonIntensity::new(200.0);
        let sr = run(BatchMode::SuspendResume { threshold });
        let ws2 = run(BatchMode::WaitAndScale {
            threshold,
            scale: 2,
        });
        assert!(
            ws2 < sr,
            "W&S 2x ({ws2} ticks) should beat suspend-resume ({sr} ticks)"
        );
    }

    #[test]
    fn arrival_delays_start() {
        let mut sim = sim_with(flat_carbon(100.0));
        let job = BatchJob::new(0.5, Box::new(LinearScaling));
        let app = BatchApp::new("d", job, BatchMode::CarbonAgnostic, 1, 4)
            .with_arrival(SimTime::from_secs(600));
        let stats = app.stats();
        sim.add_app("a", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        sim.run_until_done(10_000);
        assert_eq!(stats.borrow().started_at, Some(SimTime::from_secs(600)));
    }

    #[test]
    fn containers_released_after_completion() {
        let mut sim = sim_with(flat_carbon(100.0));
        let job = BatchJob::new(0.25, Box::new(LinearScaling));
        let app = BatchApp::new("r", job, BatchMode::CarbonAgnostic, 2, 4);
        let ids = {
            let a = sim
                .add_app("a", EnergyShare::grid_only(), Box::new(app))
                .unwrap();
            sim.run_until_done(1000);
            sim.eco().cop().container_ids_of(a)
        };
        assert!(ids.is_empty(), "containers should be stopped after the job");
    }
}
