//! # carbon-policies — the ecovisor paper's §5 policy suite
//!
//! Every policy/application pair evaluated in the paper, implemented as
//! [`ecovisor::Application`]s that exercise the Table 1/Table 2 APIs:
//!
//! * [`batch`] — §5.1 *Reducing Carbon*: carbon-agnostic execution, the
//!   system-level suspend-resume policy (WaitAWhile), and the
//!   application-specific **Wait&Scale** policy at configurable scale
//!   factors.
//! * [`web`] — §5.2 *Budgeting Carbon*: the system-level static
//!   carbon-rate-limiting policy versus application-specific dynamic
//!   carbon budgeting with an SLO-driven autoscaler and accumulated
//!   "carbon credits".
//! * [`battery`] — §5.3 *Leveraging Virtual Batteries*: zero-carbon
//!   Spark with overnight checkpointing (static minimum-guaranteed-power
//!   vs. dynamic excess-solar scale-up) and the solar-monitoring web
//!   service (fixed workers vs. SLO-driven dynamic scaling).
//! * [`solar`] — §5.4 *Directly Exploiting Solar*: static vs. dynamic
//!   per-container power caps for a barrier-synchronized parallel job,
//!   plus replica-based straggler mitigation soaking up excess solar.
//! * [`arbitrage`] — a carbon-arbitrage battery policy (charge when the
//!   grid is clean, discharge when dirty), the §3.1 use-case the paper
//!   describes but never evaluates; used by the ablation benches.
//! * [`mod@shared`] — interior-mutable stat handles experiments use to pull
//!   per-app results (runtime, SLO violations) out of the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrage;
pub mod batch;
pub mod battery;
pub mod shared;
pub mod solar;
pub mod web;

pub use batch::{BatchApp, BatchMode, BatchStats};
pub use battery::{SolarWebApp, SolarWebMode, SparkApp, SparkMode};
pub use shared::{shared, Shared};
pub use solar::{ParallelSolarApp, SolarCapMode};
pub use web::{WebApp, WebAppStats, WebPolicy};
