//! Carbon-arbitrage battery policy (extension).
//!
//! §3.1 sketches the use-case without evaluating it: datacenters with
//! batteries "may also perform carbon arbitrage, e.g., by charging their
//! virtual batteries when carbon-intensity is low and discharging when
//! high". [`ArbitrageApp`] implements exactly that around a steady
//! workload; the ablation bench compares its carbon against the same
//! workload without arbitrage.

use container_cop::ContainerSpec;
use ecovisor::{Application, EcovisorClient, EnergyClient};
use simkit::units::{CarbonIntensity, Watts};

/// A steady service that charges its virtual battery on clean power and
/// rides it through dirty periods.
pub struct ArbitrageApp {
    label: String,
    containers: u32,
    /// Charge the battery when intensity is at or below this level.
    low_threshold: CarbonIntensity,
    /// Discharge (serve load from battery) when intensity is at or above
    /// this level.
    high_threshold: CarbonIntensity,
    /// Grid charging rate while in the low-carbon band.
    charge_rate: Watts,
}

impl ArbitrageApp {
    /// Creates the application.
    ///
    /// # Panics
    ///
    /// Panics unless `low_threshold < high_threshold`.
    pub fn new(
        label: impl Into<String>,
        containers: u32,
        low_threshold: CarbonIntensity,
        high_threshold: CarbonIntensity,
        charge_rate: Watts,
    ) -> Self {
        assert!(
            low_threshold < high_threshold,
            "thresholds must be ordered low < high"
        );
        Self {
            label: label.into(),
            containers,
            low_threshold,
            high_threshold,
            charge_rate,
        }
    }
}

impl Application for ArbitrageApp {
    fn label(&self) -> &str {
        &self.label
    }

    fn on_start(&mut self, api: &mut EcovisorClient<'_>) {
        for _ in 0..self.containers {
            if let Ok(id) = api.launch_container(ContainerSpec::quad_core()) {
                let _ = api.set_container_demand(id, 1.0);
            }
        }
    }

    fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
        let intensity = api.get_grid_carbon();
        if intensity <= self.low_threshold {
            // Clean: stock up, don't discharge.
            api.set_battery_charge_rate(self.charge_rate);
            api.set_battery_max_discharge(Watts::ZERO);
        } else if intensity >= self.high_threshold {
            // Dirty: serve from the battery as hard as it allows.
            api.set_battery_charge_rate(Watts::ZERO);
            api.set_battery_max_discharge(Watts::new(f64::MAX));
        } else {
            // In between: hold.
            api.set_battery_charge_rate(Watts::ZERO);
            api.set_battery_max_discharge(Watts::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_intel::service::TraceCarbonService;
    use container_cop::CopConfig;
    use ecovisor::{EcovisorBuilder, EnergyShare, Simulation};
    use simkit::time::SimDuration;
    use simkit::trace::{Extend, Trace};
    use simkit::units::WattHours;

    /// Carbon square wave: 6 h clean (50), 6 h dirty (400).
    fn wave_carbon() -> Box<TraceCarbonService> {
        let mut samples = vec![50.0; 6 * 12];
        samples.extend(vec![400.0; 6 * 12]);
        Box::new(TraceCarbonService::new(
            "wave",
            Trace::from_samples(samples, SimDuration::from_minutes(5)).with_extend(Extend::Cycle),
        ))
    }

    fn run(arbitrage: bool) -> f64 {
        let mut sim = Simulation::new(
            EcovisorBuilder::new()
                .cluster(CopConfig::microserver_cluster(4))
                .carbon(wave_carbon())
                .build(),
        );
        // Battery sized so clean-period charging roughly matches dirty-
        // period consumption; a huge bank would waste clean energy on
        // charge that is never discharged within the run.
        let share = EnergyShare::grid_only()
            .with_battery(WattHours::new(60.0))
            .with_initial_soc(0.30);
        let app: Box<dyn Application> = if arbitrage {
            Box::new(ArbitrageApp::new(
                "arb",
                1,
                CarbonIntensity::new(100.0),
                CarbonIntensity::new(300.0),
                Watts::new(15.0),
            ))
        } else {
            Box::new(ArbitrageApp::new(
                "no-arb",
                1,
                // Thresholds outside the trace range: battery never used.
                CarbonIntensity::new(-1.0),
                CarbonIntensity::new(10_000.0),
                Watts::ZERO,
            ))
        };
        let id = sim.add_app("a", share, app).unwrap();
        sim.run_ticks(48 * 60); // two days
        sim.eco().app_totals(id).unwrap().carbon.grams()
    }

    #[test]
    fn arbitrage_cuts_carbon_on_a_square_wave() {
        let with = run(true);
        let without = run(false);
        assert!(
            with < 0.8 * without,
            "arbitrage {with} g should clearly beat baseline {without} g"
        );
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_thresholds_rejected() {
        ArbitrageApp::new(
            "bad",
            1,
            CarbonIntensity::new(300.0),
            CarbonIntensity::new(100.0),
            Watts::new(10.0),
        );
    }
}
