//! §5.2 web-service policies: static carbon-rate limiting versus dynamic
//! carbon budgeting.
//!
//! The system-level baseline "enforces a static carbon budget for each
//! application by rate-limiting (or carbon-capping) it at all times". The
//! application-specific alternative enforces "a more flexible carbon
//! budget over longer time windows ... which allows applications to
//! breach the cap for short periods" by spending accumulated carbon
//! credits, while an SLO-driven autoscaler sizes the worker pool to the
//! observed workload (§5.2).

use container_cop::ContainerSpec;
use ecovisor::{Application, EcovisorClient, EnergyClient};
use simkit::time::SimTime;
use simkit::trace::Trace;
use simkit::units::{CarbonRate, Co2Grams, Watts};
use workloads::web::{response_quantile, WebService};

use crate::shared::{shared, Shared};

/// Which §5.2 policy drives the service.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WebPolicy {
    /// System-level: a fixed carbon rate enforced at all times; the
    /// worker pool always uses the full power the rate allows.
    StaticRateLimit {
        /// The enforced carbon rate.
        rate: CarbonRate,
    },
    /// Application-specific: an SLO-driven autoscaler plus a carbon
    /// budget equal to `target_rate × elapsed`, enforced only when the
    /// accumulated credits run out.
    DynamicBudget {
        /// The long-run target carbon rate (the budget accrual rate).
        target_rate: CarbonRate,
        /// p95 latency SLO in milliseconds.
        slo_ms: f64,
    },
}

/// Results an experiment reads out after (or during) a run.
#[derive(Debug, Clone, Default)]
pub struct WebAppStats {
    /// Per-tick p95 latency samples `(time, ms)`.
    pub p95_series: Vec<(SimTime, f64)>,
    /// Per-tick worker counts.
    pub worker_series: Vec<(SimTime, u32)>,
    /// Ticks where p95 exceeded the SLO.
    pub slo_violations: u64,
    /// Total ticks served.
    pub ticks: u64,
}

impl WebAppStats {
    /// Fraction of ticks violating the SLO.
    pub fn violation_fraction(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.ticks as f64
        }
    }

    /// Maximum observed p95 latency (ms).
    pub fn max_p95(&self) -> f64 {
        self.p95_series.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

/// A load-balanced web application under a §5.2 policy.
pub struct WebApp {
    label: String,
    service: WebService,
    workload: Trace,
    policy: WebPolicy,
    /// SLO used for violation accounting (also set for the static policy,
    /// which does not act on it — the paper plots its violations).
    slo_ms: f64,
    min_workers: u32,
    max_workers: u32,
    /// Baseline CPU a provisioned worker burns independent of load
    /// (serving-stack overhead). This is why the paper's static policy
    /// draws its full carbon allowance even at low request rates.
    worker_base_util: f64,
    stats: Shared<WebAppStats>,
}

impl WebApp {
    /// Creates a web application.
    ///
    /// `workload` samples request rates in req/s; `service` defines the
    /// per-worker service rate; `slo_ms` is the p95 SLO used for
    /// accounting (and for scaling, under the dynamic policy).
    pub fn new(
        label: impl Into<String>,
        service: WebService,
        workload: Trace,
        policy: WebPolicy,
        slo_ms: f64,
    ) -> Self {
        Self {
            label: label.into(),
            service,
            workload,
            policy,
            slo_ms,
            min_workers: 1,
            max_workers: 16,
            worker_base_util: 0.35,
            stats: shared(WebAppStats::default()),
        }
    }

    /// Overrides the per-worker baseline CPU burn (builder-style).
    pub fn with_base_util(mut self, base: f64) -> Self {
        self.worker_base_util = base.clamp(0.0, 1.0);
        self
    }

    /// Bounds the worker pool (builder-style).
    pub fn with_worker_bounds(mut self, min: u32, max: u32) -> Self {
        self.min_workers = min.max(1);
        self.max_workers = max.max(self.min_workers);
        self
    }

    /// Handle to the run statistics.
    pub fn stats(&self) -> Shared<WebAppStats> {
        Shared::clone(&self.stats)
    }

    /// Peak dynamic power of one single-core worker on a microserver.
    fn worker_max_power(&self) -> Watts {
        // per-core dynamic: 3.65 / 4 cores ≈ 0.91 W.
        Watts::new(3.65 / 4.0)
    }

    /// Smallest worker count whose p95 under `lambda` meets the target.
    fn workers_for_slo(&self, lambda: f64, target_ms: f64) -> u32 {
        let mu = self.service.service_rate();
        for c in self.min_workers..=self.max_workers {
            let q = response_quantile(c as usize, mu, lambda, 0.95);
            if q * 1000.0 <= target_ms {
                return c;
            }
        }
        self.max_workers
    }

    /// Conservative worker count affordable under a carbon rate at the
    /// current intensity, sized by peak worker power (used by the
    /// dynamic policy when its credits run out).
    fn workers_for_rate(&self, api: &mut EcovisorClient<'_>, rate: CarbonRate) -> u32 {
        let intensity = api.get_grid_carbon().grams_per_kwh().max(1e-9);
        let allowed = rate.grams_per_sec() * 3.6e6 / intensity; // watts
        let n = (allowed / self.worker_max_power().watts()).floor() as u32;
        n.clamp(self.min_workers, self.max_workers)
    }

    /// Greedy worker count for the static rate-limiting policy: size the
    /// pool so its *baseline* draw consumes the full allowance ("the
    /// system-level policy uses as many resources and energy to satisfy
    /// its target carbon rate", §5.2.3 / Fig. 7a). The ecovisor's
    /// carbon-rate enforcement caps any overdraw under load.
    fn workers_filling_rate(&self, api: &mut EcovisorClient<'_>, rate: CarbonRate) -> u32 {
        let intensity = api.get_grid_carbon().grams_per_kwh().max(1e-9);
        let allowed = rate.grams_per_sec() * 3.6e6 / intensity; // watts
        let base_power = self.worker_max_power().watts() * self.worker_base_util.max(0.05);
        let n = (allowed / base_power).floor() as u32;
        n.clamp(self.min_workers, self.max_workers)
    }

    fn scale_to(&mut self, api: &mut EcovisorClient<'_>, target: u32) {
        let ids = api.container_ids();
        let current = ids.len() as u32;
        if current < target {
            for _ in 0..(target - current) {
                if api.launch_container(ContainerSpec::single_core()).is_err() {
                    break;
                }
            }
        } else if current > target {
            for id in ids.iter().rev().take((current - target) as usize) {
                let _ = api.stop_container(*id);
            }
        }
    }
}

impl Application for WebApp {
    fn label(&self) -> &str {
        &self.label
    }

    fn on_start(&mut self, api: &mut EcovisorClient<'_>) {
        for _ in 0..self.min_workers {
            let _ = api.launch_container(ContainerSpec::single_core());
        }
        if let WebPolicy::StaticRateLimit { rate } = self.policy {
            api.set_carbon_rate(Some(rate));
        }
    }

    fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
        let now = api.now();
        let lambda = self.workload.sample(now);

        // 1. Policy: size the worker pool.
        let target = match self.policy {
            WebPolicy::StaticRateLimit { rate } => {
                // Use everything the carbon rate affords, at all times.
                self.workers_filling_rate(api, rate)
            }
            WebPolicy::DynamicBudget {
                target_rate,
                slo_ms,
            } => {
                // Accrue credits; enforce the rate only when exhausted.
                let elapsed = now.as_secs() as f64;
                let accrued = Co2Grams::new(target_rate.grams_per_sec() * elapsed);
                let spent = api.get_app_carbon();
                let wanted = self.workers_for_slo(lambda, 0.80 * slo_ms);
                if spent > accrued {
                    // Out of credits: rate-cap power and shrink the pool
                    // to what the rate affords (idle power floors the
                    // per-container cap, so worker count must drop too).
                    api.set_carbon_rate(Some(target_rate));
                    wanted.min(self.workers_for_rate(api, target_rate))
                } else {
                    api.set_carbon_rate(None);
                    wanted
                }
            }
        };
        self.scale_to(api, target);

        // 2. Measure capacity actually granted (power caps shrink it).
        let ids = api.container_ids();
        let workers = ids.len();
        for id in &ids {
            let _ = api.set_container_demand(*id, 1.0);
        }
        let mean_quota = if workers == 0 {
            0.0
        } else {
            api.effective_cores() / workers as f64
        };

        // 3. Serve this tick's load.
        let out = self
            .service
            .tick(lambda, workers, mean_quota, api.tick_interval());

        // 4. Reflect real CPU usage in power attribution: baseline burn
        //    plus load-proportional serving work.
        let worker_util = (self.worker_base_util + (1.0 - self.worker_base_util) * out.utilization)
            .clamp(0.0, 1.0);
        for id in &ids {
            let _ = api.set_container_demand(*id, worker_util);
        }

        // 5. Record stats.
        let mut stats = self.stats.borrow_mut();
        stats.ticks += 1;
        stats.p95_series.push((now, out.p95_ms));
        stats.worker_series.push((now, workers as u32));
        if out.p95_ms > self.slo_ms {
            stats.slo_violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_intel::service::TraceCarbonService;
    use container_cop::CopConfig;
    use ecovisor::{EcovisorBuilder, EnergyShare, Simulation};
    use simkit::time::SimDuration;

    fn flat_carbon(v: f64) -> Box<TraceCarbonService> {
        Box::new(TraceCarbonService::new("flat", Trace::constant(v)))
    }

    fn sim(carbon_gpkwh: f64) -> Simulation {
        Simulation::new(
            EcovisorBuilder::new()
                .cluster(CopConfig::microserver_cluster(16))
                .carbon(flat_carbon(carbon_gpkwh))
                .build(),
        )
    }

    #[test]
    fn dynamic_policy_scales_with_load_and_meets_slo() {
        let mut s = sim(200.0);
        // Load steps from 50 to 500 req/s after an hour.
        let mut samples = vec![50.0; 60];
        samples.extend(vec![500.0; 60]);
        let workload = Trace::from_samples(samples, SimDuration::from_minutes(1));
        let app = WebApp::new(
            "dyn",
            WebService::new(100.0),
            workload,
            WebPolicy::DynamicBudget {
                target_rate: CarbonRate::from_milligrams_per_sec(10.0), // generous
                slo_ms: 60.0,
            },
            60.0,
        );
        let stats = app.stats();
        s.add_app("w", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        s.run_ticks(120);

        let st = stats.borrow();
        assert_eq!(st.ticks, 120);
        // Scaled up for the heavy phase.
        let early = st.worker_series[30].1;
        let late = st.worker_series[110].1;
        assert!(late > early, "workers {early} -> {late}");
        assert_eq!(st.slo_violations, 0, "max p95 {}", st.max_p95());
    }

    #[test]
    fn static_rate_policy_violates_slo_under_high_carbon_load() {
        let mut s = sim(800.0); // dirty grid: rate affords few workers
        let workload = Trace::constant(450.0);
        // 0.3 mg/s at 800 g/kWh affords 1.35 W ≈ 1 worker.
        let app = WebApp::new(
            "static",
            WebService::new(100.0),
            workload,
            WebPolicy::StaticRateLimit {
                rate: CarbonRate::from_milligrams_per_sec(0.3),
            },
            60.0,
        );
        let stats = app.stats();
        s.add_app("w", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        s.run_ticks(60);
        let st = stats.borrow();
        assert!(
            st.slo_violations > 30,
            "expected sustained violations, got {}",
            st.slo_violations
        );
    }

    #[test]
    fn static_rate_policy_overprovisions_when_clean() {
        let mut s = sim(50.0); // clean grid: same rate affords many workers
        let workload = Trace::constant(50.0);
        let app = WebApp::new(
            "static",
            WebService::new(100.0),
            workload,
            WebPolicy::StaticRateLimit {
                rate: CarbonRate::from_milligrams_per_sec(0.3),
            },
            60.0,
        )
        .with_worker_bounds(1, 12);
        let stats = app.stats();
        s.add_app("w", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        s.run_ticks(30);
        let st = stats.borrow();
        let workers = st.worker_series.last().unwrap().1;
        assert!(
            workers >= 8,
            "static policy should use the full rate allowance, got {workers}"
        );
        assert_eq!(st.slo_violations, 0);
    }

    #[test]
    fn dynamic_budget_enforces_rate_when_credits_exhausted() {
        let mut s = sim(400.0);
        let workload = Trace::constant(400.0);
        // Small budget: credits exhaust quickly, then the policy must
        // shrink to roughly one worker (the idle-power floor).
        let rate = CarbonRate::from_milligrams_per_sec(0.2);
        let app = WebApp::new(
            "dyn",
            WebService::new(100.0),
            workload,
            WebPolicy::DynamicBudget {
                target_rate: rate,
                slo_ms: 60.0,
            },
            60.0,
        );
        s.add_app("w", EnergyShare::grid_only(), Box::new(app))
            .unwrap();
        s.run_ticks(240);
        let ids = s.app_ids();
        let carbon = s.eco().app_totals(ids[0]).unwrap().carbon;
        let allowance = rate.grams_per_sec() * 240.0 * 60.0;
        assert!(
            carbon.grams() <= allowance * 1.25,
            "carbon {} should track the budget pace {allowance}",
            carbon.grams()
        );
        assert!(carbon.grams() > 0.0);
    }
}
