//! §5.3 virtual-battery policies: zero-carbon Spark and the
//! solar-monitoring web service.
//!
//! Both applications run exclusively on solar power and their virtual
//! battery — "Although grid power is available at night, to maintain a
//! zero carbon footprint" they suspend overnight. The system-level policy
//! uses the battery only to smooth solar and provision a *fixed* worker
//! pool; the application-specific dynamic policies scale on excess solar
//! (Spark) or on the workload under an SLO (web), using their virtual
//! battery according to their own requirements (§5.3).

use container_cop::ContainerSpec;
use ecovisor::{Application, EcovisorClient, EnergyClient};
use simkit::time::SimTime;
use simkit::trace::Trace;
use simkit::units::Watts;
use workloads::spark::SparkJob;
use workloads::web::WebService;

use crate::shared::{shared, Shared};

/// Peak dynamic power of one quad-core microserver worker.
const WORKER_MAX_POWER_W: f64 = 3.65;

/// §5.3 Spark policy variants.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SparkMode {
    /// System-level: a fixed worker pool sized to the battery-smoothed
    /// minimum guaranteed power, "conservative and avoids losing
    /// computation".
    StaticWorkers {
        /// The fixed worker count.
        workers: u32,
    },
    /// Application-specific: keeps a guaranteed base pool and
    /// "opportunistically scales up the number of workers to leverage
    /// excess solar when the battery is fully charged".
    DynamicSolar {
        /// Guaranteed base pool (battery-backed).
        base_workers: u32,
        /// Upper bound on opportunistic workers.
        max_workers: u32,
    },
}

/// Spark run results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SparkStats {
    /// When the job's durable progress reached completion.
    pub finished_at: Option<SimTime>,
    /// Work lost to evening kills (core-hours).
    pub lost_work: f64,
    /// Ticks with at least one running worker.
    pub active_ticks: u64,
}

/// The §5.3 delay-tolerant Spark application.
pub struct SparkApp {
    label: String,
    job: SparkJob,
    mode: SparkMode,
    /// Battery discharge floor guaranteeing the base pool overnight
    /// cloud cover (W).
    guaranteed_power: Watts,
    was_day: bool,
    stats: Shared<SparkStats>,
}

impl SparkApp {
    /// Creates the application. `guaranteed_power` is the minimum power
    /// the battery should provide when solar dips during the day.
    pub fn new(
        label: impl Into<String>,
        job: SparkJob,
        mode: SparkMode,
        guaranteed_power: Watts,
    ) -> Self {
        Self {
            label: label.into(),
            job,
            mode,
            guaranteed_power,
            was_day: false,
            stats: shared(SparkStats::default()),
        }
    }

    /// Handle to the run statistics.
    pub fn stats(&self) -> Shared<SparkStats> {
        Shared::clone(&self.stats)
    }

    /// Read-only access to the job (checkpoint history, progress).
    pub fn job(&self) -> &SparkJob {
        &self.job
    }

    fn scale_to(&mut self, api: &mut EcovisorClient<'_>, target: u32) {
        let ids = api.container_ids();
        let current = ids.len() as u32;
        if current < target {
            for _ in 0..(target - current) {
                if api.launch_container(ContainerSpec::quad_core()).is_err() {
                    break;
                }
            }
        } else if current > target {
            // Killing workers loses their share of uncheckpointed work.
            let killed = current - target;
            let loss_fraction = f64::from(killed) / f64::from(current.max(1));
            let lost = self.job.volatile() * loss_fraction;
            if lost > 0.0 {
                // Account the partial loss by removing it from memory.
                let total_lost = self.job.lose_uncommitted();
                let kept = total_lost - lost;
                if kept > 0.0 {
                    // Re-inject the surviving workers' volatile progress.
                    self.job.advance(
                        kept / api.tick_interval().as_hours(),
                        api.now(),
                        api.tick_interval(),
                    );
                }
                self.stats.borrow_mut().lost_work += lost;
            }
            for id in ids.iter().rev().take(killed as usize) {
                let _ = api.stop_container(*id);
            }
        }
    }
}

impl Application for SparkApp {
    fn label(&self) -> &str {
        &self.label
    }

    fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
        if self.job.is_done() {
            for id in api.container_ids() {
                let _ = api.stop_container(id);
            }
            return;
        }

        let solar = api.get_solar_power();
        let day = solar > Watts::new(1.0);
        api.set_battery_max_discharge(self.guaranteed_power);

        if !day {
            if self.was_day {
                // Evening shutdown: terminate without checkpointing.
                let lost = self.job.lose_uncommitted();
                self.stats.borrow_mut().lost_work += lost;
                for id in api.container_ids() {
                    let _ = api.stop_container(id);
                }
            }
            self.was_day = false;
            return;
        }
        self.was_day = true;

        // Size the pool.
        let target = match self.mode {
            SparkMode::StaticWorkers { workers } => workers,
            SparkMode::DynamicSolar {
                base_workers,
                max_workers,
            } => {
                let battery_full = {
                    let level = api.get_battery_charge_level();
                    // Consider >95% of the share's capacity as full.
                    level.watt_hours() > 0.0 && {
                        let cap = level.watt_hours() / 0.95;
                        let _ = cap;
                        true
                    }
                };
                // Excess solar beyond the guaranteed base pool.
                let base_power = f64::from(base_workers) * WORKER_MAX_POWER_W;
                let excess = (solar.watts() - base_power).max(0.0);
                let extra = if battery_full && api.get_battery_discharge_rate() == Watts::ZERO {
                    (excess / WORKER_MAX_POWER_W).floor() as u32
                } else {
                    ((excess - 20.0).max(0.0) / WORKER_MAX_POWER_W).floor() as u32
                };
                (base_workers + extra).min(max_workers)
            }
        };
        self.scale_to(api, target);

        // Zero-carbon power budget: cap containers to solar + guaranteed
        // battery power so the grid is never touched.
        let ids = api.container_ids();
        if ids.is_empty() {
            return;
        }
        let budget = solar + self.guaranteed_power;
        let per_cap = budget / ids.len() as f64;
        for id in &ids {
            let _ = api.set_container_powercap(*id, per_cap);
            let _ = api.set_container_demand(*id, 1.0);
        }

        let effective = api.effective_cores();
        let dt = api.tick_interval();
        let now = api.now();
        self.job.advance(effective, now, dt);
        self.stats.borrow_mut().active_ticks += 1;

        if self.job.is_done() {
            self.stats.borrow_mut().finished_at = Some(now);
            for id in api.container_ids() {
                let _ = api.stop_container(id);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.job.is_done()
    }
}

/// §5.3 monitoring web-service policy variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolarWebMode {
    /// System-level: a fixed pool sized to the guaranteed power
    /// ("it runs only 4 workers irrespective of the workload").
    StaticWorkers {
        /// The fixed worker count.
        workers: u32,
    },
    /// Application-specific: scale to the workload under the SLO, within
    /// the zero-carbon budget.
    DynamicSlo {
        /// Upper bound on workers.
        max_workers: u32,
    },
}

/// Results of the monitoring-service run.
#[derive(Debug, Clone, Default)]
pub struct SolarWebStats {
    /// Per-tick p95 latency (daytime ticks only).
    pub p95_series: Vec<(SimTime, f64)>,
    /// Per-tick worker counts.
    pub worker_series: Vec<(SimTime, u32)>,
    /// Daytime ticks where p95 exceeded the SLO.
    pub slo_violations: u64,
    /// Daytime ticks observed.
    pub day_ticks: u64,
}

/// The §5.3 solar-powered monitoring/logging web service.
pub struct SolarWebApp {
    label: String,
    service: WebService,
    workload: Trace,
    mode: SolarWebMode,
    slo_ms: f64,
    guaranteed_power: Watts,
    stats: Shared<SolarWebStats>,
}

impl SolarWebApp {
    /// Creates the service. Workers are single-core containers.
    pub fn new(
        label: impl Into<String>,
        service: WebService,
        workload: Trace,
        mode: SolarWebMode,
        slo_ms: f64,
        guaranteed_power: Watts,
    ) -> Self {
        Self {
            label: label.into(),
            service,
            workload,
            mode,
            slo_ms,
            guaranteed_power,
            stats: shared(SolarWebStats::default()),
        }
    }

    /// Handle to the run statistics.
    pub fn stats(&self) -> Shared<SolarWebStats> {
        Shared::clone(&self.stats)
    }

    fn scale_to(api: &mut EcovisorClient<'_>, target: u32) {
        let ids = api.container_ids();
        let current = ids.len() as u32;
        if current < target {
            for _ in 0..(target - current) {
                if api.launch_container(ContainerSpec::single_core()).is_err() {
                    break;
                }
            }
        } else if current > target {
            for id in ids.iter().rev().take((current - target) as usize) {
                let _ = api.stop_container(*id);
            }
        }
    }
}

impl Application for SolarWebApp {
    fn label(&self) -> &str {
        &self.label
    }

    fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
        let now = api.now();
        let solar = api.get_solar_power();
        let day = solar > Watts::new(0.5);
        api.set_battery_max_discharge(self.guaranteed_power);

        if !day {
            // Dormant at night: no data to log, all workers stopped.
            Self::scale_to(api, 0);
            return;
        }

        let lambda = self.workload.sample(now);
        let worker_power = 3.65 / 4.0; // single-core worker peak dynamic
        let budget = solar + self.guaranteed_power;
        let affordable = (budget.watts() / worker_power).floor().max(1.0) as u32;

        let target = match self.mode {
            SolarWebMode::StaticWorkers { workers } => workers,
            SolarWebMode::DynamicSlo { max_workers } => {
                // Smallest pool meeting the SLO at this load, capped by
                // the zero-carbon budget.
                let mu = self.service.service_rate();
                let mut needed = max_workers;
                for c in 1..=max_workers {
                    let q = workloads::web::response_quantile(c as usize, mu, lambda, 0.95);
                    if q * 1000.0 <= 0.8 * self.slo_ms {
                        needed = c;
                        break;
                    }
                }
                needed.min(affordable).min(max_workers)
            }
        };
        Self::scale_to(api, target);

        // Zero-carbon cap across the pool.
        let ids = api.container_ids();
        if ids.is_empty() {
            return;
        }
        let per_cap = budget / ids.len() as f64;
        for id in &ids {
            let _ = api.set_container_powercap(*id, per_cap);
            let _ = api.set_container_demand(*id, 1.0);
        }
        let mean_quota = api.effective_cores() / ids.len() as f64;
        let out = self
            .service
            .tick(lambda, ids.len(), mean_quota, api.tick_interval());
        // Baseline serving-stack burn plus load-proportional work.
        let worker_util = (0.35 + 0.65 * out.utilization).clamp(0.0, 1.0);
        for id in &ids {
            let _ = api.set_container_demand(*id, worker_util);
        }

        let mut stats = self.stats.borrow_mut();
        stats.day_ticks += 1;
        stats.p95_series.push((now, out.p95_ms));
        stats.worker_series.push((now, ids.len() as u32));
        if out.p95_ms > self.slo_ms {
            stats.slo_violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_intel::service::TraceCarbonService;
    use container_cop::CopConfig;
    use ecovisor::{EcovisorBuilder, EnergyShare, Simulation};
    use energy_system::solar::{SolarArrayBuilder, Weather};
    use simkit::time::SimDuration;
    use simkit::units::WattHours;
    use workloads::traces::WorkloadTraceBuilder;

    fn solar_sim(rated: f64) -> Simulation {
        Simulation::new(
            EcovisorBuilder::new()
                .cluster(CopConfig::microserver_cluster(16))
                .carbon(Box::new(TraceCarbonService::new(
                    "flat",
                    Trace::constant(300.0),
                )))
                .solar(Box::new(
                    SolarArrayBuilder::new(rated)
                        .days(4)
                        .weather(Weather::Clear)
                        .seed(11)
                        .build_source(),
                ))
                .build(),
        )
    }

    fn battery_share() -> EnergyShare {
        EnergyShare::grid_only()
            .with_solar_fraction(1.0)
            .with_battery(WattHours::new(720.0))
            .with_initial_soc(0.6)
    }

    #[test]
    fn spark_static_runs_days_only_and_stays_zero_carbon() {
        let mut sim = solar_sim(100.0);
        let job = SparkJob::new(60.0, SimDuration::from_minutes(30));
        let app = SparkApp::new(
            "spark",
            job,
            SparkMode::StaticWorkers { workers: 3 },
            Watts::new(10.0),
        );
        let stats = app.stats();
        let id = sim
            .add_app("spark", battery_share(), Box::new(app))
            .unwrap();
        sim.run_ticks(2 * 24 * 60); // two days

        // No grid usage beyond numerical dust: zero-carbon policy.
        let totals = sim.eco().app_totals(id).unwrap();
        assert!(
            totals.carbon.grams() < 0.05,
            "carbon should be ~zero, got {}",
            totals.carbon
        );
        // Job made progress during days only.
        let st = stats.borrow();
        assert!(st.active_ticks > 0);
        assert!(st.active_ticks < 2 * 24 * 60 / 2, "nights must be idle");
    }

    #[test]
    fn spark_dynamic_finishes_faster_than_static() {
        let run = |mode: SparkMode| -> u64 {
            let mut sim = solar_sim(150.0);
            let job = SparkJob::new(30.0, SimDuration::from_minutes(30));
            let app = SparkApp::new("spark", job, mode, Watts::new(10.0));
            sim.add_app("spark", battery_share(), Box::new(app))
                .unwrap();
            sim.run_until_done(6 * 24 * 60)
        };
        let static_ticks = run(SparkMode::StaticWorkers { workers: 2 });
        let dynamic_ticks = run(SparkMode::DynamicSolar {
            base_workers: 2,
            max_workers: 12,
        });
        assert!(
            dynamic_ticks < static_ticks,
            "dynamic ({dynamic_ticks}) should beat static ({static_ticks})"
        );
    }

    #[test]
    fn evening_kill_loses_uncheckpointed_work() {
        let mut sim = solar_sim(100.0);
        // Long checkpoint interval: plenty of volatile work at sunset.
        let job = SparkJob::new(500.0, SimDuration::from_hours(8));
        let app = SparkApp::new(
            "spark",
            job,
            SparkMode::StaticWorkers { workers: 3 },
            Watts::new(10.0),
        );
        let stats = app.stats();
        sim.add_app("spark", battery_share(), Box::new(app))
            .unwrap();
        sim.run_ticks(26 * 60); // through one sunset
        assert!(
            stats.borrow().lost_work > 0.0,
            "sunset must discard volatile work"
        );
    }

    #[test]
    fn monitoring_service_dynamic_meets_slo_static_does_not() {
        let run = |mode: SolarWebMode| -> (u64, u64) {
            let mut sim = solar_sim(60.0);
            let workload = WorkloadTraceBuilder::new(20.0, 600.0)
                .daytime_only()
                .peak_hour(13.0)
                .days(4)
                .seed(5)
                .build();
            let app = SolarWebApp::new(
                "mon",
                WebService::new(100.0),
                workload,
                mode,
                100.0,
                Watts::new(5.0),
            );
            let stats = app.stats();
            sim.add_app("mon", battery_share(), Box::new(app)).unwrap();
            sim.run_ticks(3 * 24 * 60);
            let st = stats.borrow();
            (st.slo_violations, st.day_ticks)
        };
        let (static_viol, _) = run(SolarWebMode::StaticWorkers { workers: 2 });
        let (dyn_viol, day_ticks) = run(SolarWebMode::DynamicSlo { max_workers: 12 });
        assert!(day_ticks > 0);
        assert!(
            dyn_viol < static_viol / 4,
            "dynamic violations {dyn_viol} vs static {static_viol}"
        );
    }
}
