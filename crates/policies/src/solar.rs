//! §5.4 solar-direct policies: static vs. dynamic per-container power
//! caps, and replica-based straggler mitigation.
//!
//! The job runs on solar power alone ("without any battery capacity");
//! the application "explicitly allocate\[s\] their limited solar power
//! across a set of containers, e.g., such that the sum of containers'
//! power caps does not exceed the supply of solar power". The system
//! policy splits the budget evenly; the dynamic policy gives each node
//! only what it can use ("100% resource utilization"), shifting power
//! away from nodes doing I/O or waiting at barriers. The third policy
//! turns *excess* solar into replicas for straggling tasks (Fig. 11).

use container_cop::{ContainerId, ContainerSpec};
use ecovisor::{Application, EcovisorClient, EnergyClient};
use simkit::time::SimTime;
use simkit::units::Watts;
use workloads::parallel::SyntheticParallelJob;

use crate::shared::{shared, Shared};

/// Peak dynamic power of a quad-core container (watts).
const WORKER_MAX_W: f64 = 3.65;

/// §5.4 power-cap policy variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolarCapMode {
    /// System-level: equal static caps (`solar / n` each).
    StaticCaps,
    /// Application-specific: caps proportional to each node's demand so
    /// every node uses ~100 % of its allocation.
    DynamicCaps,
    /// Dynamic caps plus replica tasks for stragglers, consuming excess
    /// solar (Fig. 11).
    StragglerReplicas,
}

/// Run results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParallelStats {
    /// Completion time.
    pub finished_at: Option<SimTime>,
    /// Replica containers launched in total.
    pub replicas_launched: u64,
}

/// The §5.4 synthetic parallel application under a power-cap policy.
pub struct ParallelSolarApp {
    label: String,
    job: SyntheticParallelJob,
    mode: SolarCapMode,
    workers: Vec<ContainerId>,
    replicas: Vec<ContainerId>,
    last_phase: usize,
    stats: Shared<ParallelStats>,
}

impl ParallelSolarApp {
    /// Creates the application.
    pub fn new(label: impl Into<String>, job: SyntheticParallelJob, mode: SolarCapMode) -> Self {
        Self {
            label: label.into(),
            job,
            mode,
            workers: Vec::new(),
            replicas: Vec::new(),
            last_phase: 0,
            stats: shared(ParallelStats::default()),
        }
    }

    /// Handle to the run statistics.
    pub fn stats(&self) -> Shared<ParallelStats> {
        Shared::clone(&self.stats)
    }

    /// Read-only access to the job.
    pub fn job(&self) -> &SyntheticParallelJob {
        &self.job
    }
}

impl Application for ParallelSolarApp {
    fn label(&self) -> &str {
        &self.label
    }

    fn on_start(&mut self, api: &mut EcovisorClient<'_>) {
        for _ in 0..self.job.config().workers {
            match api.launch_container(ContainerSpec::quad_core()) {
                Ok(id) => self.workers.push(id),
                Err(_) => break,
            }
        }
    }

    fn on_tick(&mut self, api: &mut EcovisorClient<'_>) {
        if self.job.is_done() {
            for id in api.container_ids() {
                let _ = api.stop_container(id);
            }
            return;
        }

        // Phase boundary: replicas from the previous phase retire.
        if self.job.phase() != self.last_phase {
            for id in self.replicas.drain(..) {
                let _ = api.stop_container(id);
            }
            self.last_phase = self.job.phase();
        }

        let solar = api.get_solar_power();
        let n = self.workers.len();
        if n == 0 {
            return;
        }
        let demands = self.job.demands();

        // Set demands first so caps act on real usage.
        for (i, id) in self.workers.iter().enumerate() {
            let _ = api.set_container_demand(*id, demands[i]);
        }

        // Allocate the solar budget as power caps.
        let budget = solar.watts();
        match self.mode {
            SolarCapMode::StaticCaps => {
                let per = budget / n as f64;
                for id in &self.workers {
                    let _ = api.set_container_powercap(*id, Watts::new(per));
                }
            }
            SolarCapMode::DynamicCaps | SolarCapMode::StragglerReplicas => {
                // Each node's desired power at its current demand.
                let desired: Vec<f64> = demands.iter().map(|d| WORKER_MAX_W * d).collect();
                let total_desired: f64 = desired.iter().sum();
                let scale = if total_desired > 0.0 {
                    (budget / total_desired).min(1.0)
                } else {
                    0.0
                };
                for (id, want) in self.workers.iter().zip(&desired) {
                    let _ = api.set_container_powercap(*id, Watts::new(want * scale));
                }

                if self.mode == SolarCapMode::StragglerReplicas {
                    // Spend genuinely excess solar on replicas for
                    // stragglers: one replica costs one worker's power.
                    // With abundant excess, additional replicas go to
                    // already-replicated slow tasks — "at most one
                    // replica task will finish" (§5.4), so the extras
                    // only consume the otherwise-wasted energy
                    // (Fig. 11's declining efficiency).
                    let mut excess = (budget - total_desired).max(0.0);
                    let stragglers = self.job.active_stragglers();
                    for pass in 0..3u32 {
                        let targets: Vec<usize> = if pass == 0 {
                            stragglers.clone()
                        } else {
                            // Extra passes re-replicate slow tasks.
                            (0..self.job.config().workers)
                                .filter(|w| self.job.replicas_of(*w) == pass)
                                .collect()
                        };
                        for straggler in targets {
                            if excess < WORKER_MAX_W {
                                break;
                            }
                            if let Ok(id) = api.launch_container(ContainerSpec::quad_core()) {
                                let _ = api.set_container_demand(id, 1.0);
                                let _ = api.set_container_powercap(id, Watts::new(WORKER_MAX_W));
                                self.replicas.push(id);
                                self.job.add_replica(straggler);
                                self.stats.borrow_mut().replicas_launched += 1;
                                excess -= WORKER_MAX_W;
                            } else {
                                break;
                            }
                        }
                        if excess < WORKER_MAX_W {
                            break;
                        }
                    }
                }
            }
        }

        // Advance with the per-worker grants the caps produced.
        let grants: Vec<f64> = self
            .workers
            .iter()
            .map(|id| api.container_effective_cores(*id).unwrap_or(0.0))
            .collect();
        let dt = api.tick_interval();
        self.job.advance(&grants, dt);

        if self.job.is_done() {
            self.stats.borrow_mut().finished_at = Some(api.now());
            for id in api.container_ids() {
                let _ = api.stop_container(id);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.job.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_intel::service::TraceCarbonService;
    use container_cop::CopConfig;
    use ecovisor::{EcovisorBuilder, EnergyShare, Simulation};
    use energy_system::solar::TraceSolarSource;
    use simkit::trace::Trace;
    use workloads::parallel::ParallelConfig;

    fn sim_with_solar(watts: f64) -> Simulation {
        Simulation::new(
            EcovisorBuilder::new()
                .cluster(CopConfig::microserver_cluster(24))
                .carbon(Box::new(TraceCarbonService::new(
                    "flat",
                    Trace::constant(200.0),
                )))
                .solar(Box::new(TraceSolarSource::new(Trace::constant(watts))))
                .build(),
        )
    }

    fn small_job(straggler_prob: f64, seed: u64) -> SyntheticParallelJob {
        // Phases must be long relative to the 1-minute tick for the
        // cap policies to differentiate (as in the paper's hour-scale
        // phases); short phases drown the effect in quantization.
        let cfg = ParallelConfig {
            workers: 4,
            phases: 2,
            work_per_phase: 1.0,
            io_time: simkit::time::SimDuration::from_minutes(4),
            io_utilization: 0.1,
            straggler_prob,
            straggler_slowdown: 0.35,
            work_jitter: 0.4,
        };
        SyntheticParallelJob::new(cfg, seed)
    }

    fn run(mode: SolarCapMode, solar_w: f64, straggler_prob: f64) -> u64 {
        let mut sim = sim_with_solar(solar_w);
        let app = ParallelSolarApp::new("par", small_job(straggler_prob, 3), mode);
        sim.add_app(
            "par",
            EnergyShare::grid_only().with_solar_fraction(1.0),
            Box::new(app),
        )
        .unwrap();
        sim.run_until_done(100_000)
    }

    #[test]
    fn dynamic_caps_beat_static_when_power_scarce() {
        // 4 workers want up to 20 W; give only 10 W.
        let static_ticks = run(SolarCapMode::StaticCaps, 10.0, 0.0);
        let dynamic_ticks = run(SolarCapMode::DynamicCaps, 10.0, 0.0);
        assert!(
            dynamic_ticks < static_ticks,
            "dynamic {dynamic_ticks} vs static {static_ticks}"
        );
    }

    #[test]
    fn policies_tie_when_power_abundant() {
        let static_ticks = run(SolarCapMode::StaticCaps, 60.0, 0.0);
        let dynamic_ticks = run(SolarCapMode::DynamicCaps, 60.0, 0.0);
        let diff = static_ticks.abs_diff(dynamic_ticks);
        assert!(
            diff <= 2,
            "static {static_ticks} vs dynamic {dynamic_ticks}"
        );
    }

    #[test]
    fn replicas_cut_straggler_runtime_given_excess_power() {
        // Abundant power (2x need): replicas are affordable.
        let without = run(SolarCapMode::DynamicCaps, 30.0, 0.9);
        let with = run(SolarCapMode::StragglerReplicas, 30.0, 0.9);
        assert!(
            with < without,
            "replicas {with} should beat no-mitigation {without}"
        );
    }

    #[test]
    fn replica_containers_retire_at_phase_end() {
        let mut sim = sim_with_solar(45.0);
        let app = ParallelSolarApp::new("par", small_job(1.0, 9), SolarCapMode::StragglerReplicas);
        let stats = app.stats();
        let id = sim
            .add_app(
                "par",
                EnergyShare::grid_only().with_solar_fraction(1.0),
                Box::new(app),
            )
            .unwrap();
        sim.run_until_done(100_000);
        assert!(stats.borrow().replicas_launched > 0);
        assert!(
            sim.eco().cop().container_ids_of(id).is_empty(),
            "all containers stopped at completion"
        );
    }

    #[test]
    fn zero_solar_stalls_compute_but_not_io() {
        let ticks = run(SolarCapMode::DynamicCaps, 0.0, 0.0);
        // Never finishes within the bound (0 solar = no compute power);
        // run_until_done returns the cap.
        assert_eq!(ticks, 100_000);
    }
}
