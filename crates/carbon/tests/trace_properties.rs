//! Randomized property tests of the carbon-intensity generator: bounds,
//! determinism, and percentile-threshold coherence across arbitrary
//! regions and seeds.
//!
//! Cases are generated from a fixed-seed [`SimRng`] stream (the offline
//! replacement for proptest), so failures are exactly reproducible.

use carbon_intel::service::CarbonService;
use carbon_intel::{percentile_threshold, regions, CarbonTraceBuilder, RegionProfile};
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

fn arb_region(rng: &mut SimRng) -> RegionProfile {
    match rng.uniform_u64(0, 3) {
        0 => regions::ontario(),
        1 => regions::california(),
        _ => regions::uruguay(),
    }
}

/// Generated intensity always respects the profile's floor/ceiling.
#[test]
fn intensity_within_profile_bounds() {
    let mut rng = SimRng::from_seed(3003).fork("intensity_within_profile_bounds");
    for _ in 0..64 {
        let profile = arb_region(&mut rng);
        let seed = rng.uniform_u64(0, 1000);
        let days = rng.uniform_u64(1, 5);
        let trace = CarbonTraceBuilder::new(profile.clone())
            .days(days)
            .seed(seed)
            .build();
        for &v in trace.samples() {
            assert!(v >= profile.floor - 1e-9, "{v} below floor");
            assert!(v <= profile.ceiling + 1e-9, "{v} above ceiling");
        }
    }
}

/// Generation is a pure function of (profile, days, seed).
#[test]
fn generation_is_deterministic() {
    let mut rng = SimRng::from_seed(3003).fork("generation_is_deterministic");
    for _ in 0..64 {
        let profile = arb_region(&mut rng);
        let seed = rng.uniform_u64(0, 1000);
        let a = CarbonTraceBuilder::new(profile.clone())
            .days(2)
            .seed(seed)
            .build();
        let b = CarbonTraceBuilder::new(profile).days(2).seed(seed).build();
        assert_eq!(a.samples(), b.samples());
    }
}

/// A percentile threshold splits the window as advertised: the fraction
/// of samples at/below the p-th percentile is ≈ p.
#[test]
fn threshold_splits_window() {
    let mut rng = SimRng::from_seed(3003).fork("threshold_splits_window");
    for _ in 0..64 {
        let profile = arb_region(&mut rng);
        let seed = rng.uniform_u64(0, 200);
        let p = rng.uniform(10.0, 90.0);
        let svc = CarbonTraceBuilder::new(profile)
            .days(3)
            .seed(seed)
            .build_service();
        let window = SimDuration::from_hours(48);
        let step = SimDuration::from_minutes(5);
        let th =
            percentile_threshold(&svc, SimTime::EPOCH, window, step, p).expect("non-empty window");
        let below = carbon_intel::threshold::fraction_below(&svc, SimTime::EPOCH, window, step, th);
        assert!(
            (below - p / 100.0).abs() < 0.05,
            "p={p}: fraction below was {below}"
        );
    }
}

/// The diurnal multiplier is bounded and wraps every 24 hours.
#[test]
fn diurnal_multiplier_is_bounded() {
    let mut rng = SimRng::from_seed(3003).fork("diurnal_multiplier_is_bounded");
    for _ in 0..64 {
        let profile = arb_region(&mut rng);
        let hour = rng.uniform(0.0, 24.0);
        let m = profile.diurnal_multiplier(hour);
        assert!((0.1..5.0).contains(&m), "multiplier {m} at hour {hour}");
        // Wrap coherence.
        let wrapped = profile.diurnal_multiplier(hour + 24.0);
        assert!((m - wrapped).abs() < 1e-9);
    }
}

/// The service view agrees with the raw trace.
#[test]
fn service_matches_trace() {
    let mut rng = SimRng::from_seed(3003).fork("service_matches_trace");
    for _ in 0..64 {
        let profile = arb_region(&mut rng);
        let seed = rng.uniform_u64(0, 100);
        let minute = rng.uniform_u64(0, 2 * 24 * 60);
        let svc = CarbonTraceBuilder::new(profile)
            .days(2)
            .seed(seed)
            .build_service();
        let at = SimTime::from_secs(minute * 60);
        let via_service = svc.current_intensity(at).grams_per_kwh();
        let via_trace = svc.trace().sample(at);
        assert_eq!(via_service, via_trace);
    }
}
