//! Property-based tests of the carbon-intensity generator: bounds,
//! determinism, and percentile-threshold coherence across arbitrary
//! regions and seeds.

use proptest::prelude::*;

use carbon_intel::service::CarbonService;
use carbon_intel::{percentile_threshold, regions, CarbonTraceBuilder, RegionProfile};
use simkit::time::{SimDuration, SimTime};

fn arb_region() -> impl Strategy<Value = RegionProfile> {
    prop_oneof![
        Just(regions::ontario()),
        Just(regions::california()),
        Just(regions::uruguay()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated intensity always respects the profile's floor/ceiling.
    #[test]
    fn intensity_within_profile_bounds(
        profile in arb_region(),
        seed in 0u64..1000,
        days in 1u64..5,
    ) {
        let trace = CarbonTraceBuilder::new(profile.clone())
            .days(days)
            .seed(seed)
            .build();
        for &v in trace.samples() {
            prop_assert!(v >= profile.floor - 1e-9, "{v} below floor");
            prop_assert!(v <= profile.ceiling + 1e-9, "{v} above ceiling");
        }
    }

    /// Generation is a pure function of (profile, days, seed).
    #[test]
    fn generation_is_deterministic(
        profile in arb_region(),
        seed in 0u64..1000,
    ) {
        let a = CarbonTraceBuilder::new(profile.clone()).days(2).seed(seed).build();
        let b = CarbonTraceBuilder::new(profile).days(2).seed(seed).build();
        prop_assert_eq!(a.samples(), b.samples());
    }

    /// A percentile threshold splits the window as advertised: the
    /// fraction of samples at/below the p-th percentile is ≈ p.
    #[test]
    fn threshold_splits_window(
        profile in arb_region(),
        seed in 0u64..200,
        p in 10.0_f64..90.0,
    ) {
        let svc = CarbonTraceBuilder::new(profile).days(3).seed(seed).build_service();
        let window = SimDuration::from_hours(48);
        let step = SimDuration::from_minutes(5);
        let th = percentile_threshold(&svc, SimTime::EPOCH, window, step, p)
            .expect("non-empty window");
        let below = carbon_intel::threshold::fraction_below(
            &svc, SimTime::EPOCH, window, step, th,
        );
        prop_assert!(
            (below - p / 100.0).abs() < 0.05,
            "p={p}: fraction below was {below}"
        );
    }

    /// The diurnal multiplier is continuous enough that adjacent hours
    /// never jump more than the shape's largest segment slope.
    #[test]
    fn diurnal_multiplier_is_bounded(
        profile in arb_region(),
        hour in 0.0_f64..24.0,
    ) {
        let m = profile.diurnal_multiplier(hour);
        prop_assert!((0.1..5.0).contains(&m), "multiplier {m} at hour {hour}");
        // Wrap coherence.
        let wrapped = profile.diurnal_multiplier(hour + 24.0);
        prop_assert!((m - wrapped).abs() < 1e-9);
    }

    /// The service view agrees with the raw trace.
    #[test]
    fn service_matches_trace(
        profile in arb_region(),
        seed in 0u64..100,
        minute in 0u64..(2 * 24 * 60),
    ) {
        let svc = CarbonTraceBuilder::new(profile).days(2).seed(seed).build_service();
        let at = SimTime::from_secs(minute * 60);
        let via_service = svc.current_intensity(at).grams_per_kwh();
        let via_trace = svc.trace().sample(at);
        prop_assert_eq!(via_service, via_trace);
    }
}
