//! # carbon-intel — carbon information service substrate
//!
//! Stand-in for third-party carbon information services (electricityMap,
//! WattTime) that the ecovisor polls for real-time, location-specific grid
//! carbon intensity (paper §2, "Monitoring Carbon").
//!
//! The real services are network APIs over proprietary grid data; here the
//! same query surface ([`CarbonService`]) is backed by synthetic traces
//! generated from regional profiles fitted to the paper's Figure 1:
//!
//! * **Ontario** — low (~25–45 g/kWh), flat: nuclear-dominated.
//! * **Uruguay** — slightly higher (~40–110 g/kWh): hydro with wind swings.
//! * **California (CAISO)** — highest and most volatile (~90–350 g/kWh):
//!   fossil base with deep midday solar dips ("duck curve") and evening
//!   peaks. §5.1 drives its experiments from CAISO 2020 data; our
//!   [`regions::california`] profile reproduces its shape and volatility.
//!
//! # Example
//!
//! ```
//! use carbon_intel::{regions, CarbonTraceBuilder, CarbonService};
//! use simkit::time::SimTime;
//!
//! let service = CarbonTraceBuilder::new(regions::california())
//!     .days(2)
//!     .seed(42)
//!     .build_service();
//! let now = SimTime::from_hours(12);
//! let intensity = service.current_intensity(now);
//! assert!(intensity.grams_per_kwh() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forecast;
pub mod generator;
pub mod regions;
pub mod service;
pub mod threshold;

pub use generator::CarbonTraceBuilder;
pub use regions::{RegionKind, RegionProfile};
pub use service::{CarbonService, TraceCarbonService};
pub use threshold::percentile_threshold;
