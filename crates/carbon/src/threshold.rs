//! Percentile threshold selection for carbon-aware policies.
//!
//! The paper's suspend-resume and Wait&Scale policies pick their carbon
//! threshold as a percentile of the intensity distribution over a lookback
//! window: "We set the carbon threshold based on the 30th %ile of
//! carbon-intensity over a 48 hour window in each run" (§5.1.1) and the
//! 33rd percentile over the trace duration for BLAST.

use simkit::stats::percentile;
use simkit::time::{SimDuration, SimTime};
use simkit::units::CarbonIntensity;

use crate::service::CarbonService;

/// Computes the `p`-th percentile of the intensity reported by `service`
/// over the window `[from, from + window)`, sampled every `step`.
///
/// Returns `None` when the window contains no samples (zero-length window
/// or zero step).
pub fn percentile_threshold(
    service: &dyn CarbonService,
    from: SimTime,
    window: SimDuration,
    step: SimDuration,
    p: f64,
) -> Option<CarbonIntensity> {
    if window.is_zero() || step.is_zero() {
        return None;
    }
    let values: Vec<f64> = service
        .history(from, from + window, step)
        .into_iter()
        .map(|(_, ci)| ci.grams_per_kwh())
        .collect();
    percentile(&values, p).map(CarbonIntensity::new)
}

/// Fraction of time within `[from, from + window)` that intensity is at or
/// below `threshold` — i.e. how often a threshold policy would run.
pub fn fraction_below(
    service: &dyn CarbonService,
    from: SimTime,
    window: SimDuration,
    step: SimDuration,
    threshold: CarbonIntensity,
) -> f64 {
    if window.is_zero() || step.is_zero() {
        return 0.0;
    }
    let history = service.history(from, from + window, step);
    if history.is_empty() {
        return 0.0;
    }
    let below = history.iter().filter(|(_, ci)| *ci <= threshold).count();
    below as f64 / history.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CarbonTraceBuilder;
    use crate::regions;
    use crate::service::{ConstantCarbonService, TraceCarbonService};
    use simkit::trace::Trace;

    fn five_min() -> SimDuration {
        SimDuration::from_minutes(5)
    }

    #[test]
    fn threshold_on_known_trace() {
        // 10 equally likely values 10..=100.
        let samples: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let svc = TraceCarbonService::new(
            "T",
            Trace::from_samples(samples, SimDuration::from_minutes(5)),
        );
        let th = percentile_threshold(
            &svc,
            SimTime::EPOCH,
            SimDuration::from_minutes(50),
            five_min(),
            0.0,
        )
        .expect("non-empty");
        assert_eq!(th.grams_per_kwh(), 10.0);
        let th50 = percentile_threshold(
            &svc,
            SimTime::EPOCH,
            SimDuration::from_minutes(50),
            five_min(),
            50.0,
        )
        .expect("non-empty");
        assert_eq!(th50.grams_per_kwh(), 55.0);
    }

    #[test]
    fn empty_window_returns_none() {
        let svc = ConstantCarbonService::new("C", CarbonIntensity::new(5.0));
        assert!(
            percentile_threshold(&svc, SimTime::EPOCH, SimDuration::ZERO, five_min(), 30.0)
                .is_none()
        );
        assert!(percentile_threshold(
            &svc,
            SimTime::EPOCH,
            SimDuration::from_hours(1),
            SimDuration::ZERO,
            30.0
        )
        .is_none());
    }

    #[test]
    fn fraction_below_matches_percentile() {
        // By construction, ~30% of samples lie at/below the 30th %ile.
        let svc = CarbonTraceBuilder::new(regions::california())
            .days(2)
            .seed(17)
            .build_service();
        let window = SimDuration::from_hours(48);
        let th = percentile_threshold(&svc, SimTime::EPOCH, window, five_min(), 30.0)
            .expect("non-empty");
        let frac = fraction_below(&svc, SimTime::EPOCH, window, five_min(), th);
        assert!(
            (frac - 0.30).abs() < 0.03,
            "fraction below 30th %ile was {frac}"
        );
    }

    #[test]
    fn fraction_below_extremes() {
        let svc = ConstantCarbonService::new("C", CarbonIntensity::new(100.0));
        let w = SimDuration::from_hours(1);
        assert_eq!(
            fraction_below(
                &svc,
                SimTime::EPOCH,
                w,
                five_min(),
                CarbonIntensity::new(99.0)
            ),
            0.0
        );
        assert_eq!(
            fraction_below(
                &svc,
                SimTime::EPOCH,
                w,
                five_min(),
                CarbonIntensity::new(100.0)
            ),
            1.0
        );
    }
}
