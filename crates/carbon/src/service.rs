//! The carbon information service query surface.
//!
//! Mirrors what electricityMap/WattTime expose and the paper's ecovisor
//! consumes: the *current* grid carbon intensity plus historical queries
//! (the prototype stores history in InfluxDB to "support sophisticated
//! queries over historical data", §3.1).

use simkit::time::{SimDuration, SimTime};
use simkit::trace::Trace;
use simkit::units::CarbonIntensity;

/// A queryable source of grid carbon-intensity estimates.
///
/// Object-safe so the ecovisor can hold `Box<dyn CarbonService>`.
pub trait CarbonService: Send + Sync {
    /// Region this service reports for (e.g. `"California"`).
    fn region(&self) -> &str;

    /// Real-time carbon-intensity estimate at `at`.
    fn current_intensity(&self, at: SimTime) -> CarbonIntensity;

    /// Historical intensity over `[from, to)` sampled every `step`.
    ///
    /// Default implementation repeatedly calls
    /// [`current_intensity`](Self::current_intensity).
    fn history(
        &self,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> Vec<(SimTime, CarbonIntensity)> {
        let mut out = Vec::new();
        if step.is_zero() {
            return out;
        }
        let mut t = from;
        while t < to {
            out.push((t, self.current_intensity(t)));
            t += step;
        }
        out
    }
}

/// A [`CarbonService`] backed by a pre-generated [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceCarbonService {
    region: String,
    trace: Trace,
}

impl TraceCarbonService {
    /// Wraps a trace of g·CO2/kWh samples as a service for `region`.
    pub fn new(region: impl Into<String>, trace: Trace) -> Self {
        Self {
            region: region.into(),
            trace,
        }
    }

    /// The underlying trace (used by experiment harnesses for plotting).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl CarbonService for TraceCarbonService {
    fn region(&self) -> &str {
        &self.region
    }

    fn current_intensity(&self, at: SimTime) -> CarbonIntensity {
        CarbonIntensity::new(self.trace.sample(at))
    }
}

/// A constant-intensity service, useful in tests and as a "flat grid"
/// baseline.
#[derive(Debug, Clone)]
pub struct ConstantCarbonService {
    region: String,
    intensity: CarbonIntensity,
}

impl ConstantCarbonService {
    /// Creates a service that always reports `intensity`.
    pub fn new(region: impl Into<String>, intensity: CarbonIntensity) -> Self {
        Self {
            region: region.into(),
            intensity,
        }
    }
}

impl CarbonService for ConstantCarbonService {
    fn region(&self) -> &str {
        &self.region
    }

    fn current_intensity(&self, _at: SimTime) -> CarbonIntensity {
        self.intensity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::SimDuration;

    #[test]
    fn trace_service_samples_trace() {
        let trace = Trace::from_samples(vec![100.0, 200.0], SimDuration::from_hours(1));
        let svc = TraceCarbonService::new("Test", trace);
        assert_eq!(svc.region(), "Test");
        assert_eq!(
            svc.current_intensity(SimTime::from_secs(0)).grams_per_kwh(),
            100.0
        );
        assert_eq!(
            svc.current_intensity(SimTime::from_hours(1))
                .grams_per_kwh(),
            200.0
        );
    }

    #[test]
    fn history_samples_at_step() {
        let trace = Trace::from_samples(vec![1.0, 2.0, 3.0], SimDuration::from_minutes(5));
        let svc = TraceCarbonService::new("Test", trace);
        let h = svc.history(
            SimTime::from_secs(0),
            SimTime::from_secs(900),
            SimDuration::from_minutes(5),
        );
        assert_eq!(h.len(), 3);
        assert_eq!(h[2].1.grams_per_kwh(), 3.0);
        // Zero step yields no history rather than looping forever.
        assert!(svc
            .history(
                SimTime::from_secs(0),
                SimTime::from_secs(900),
                SimDuration::ZERO
            )
            .is_empty());
    }

    #[test]
    fn constant_service() {
        let svc = ConstantCarbonService::new("Flat", CarbonIntensity::new(50.0));
        assert_eq!(
            svc.current_intensity(SimTime::from_hours(99))
                .grams_per_kwh(),
            50.0
        );
    }

    #[test]
    fn service_is_object_safe() {
        let svc: Box<dyn CarbonService> = Box::new(ConstantCarbonService::new(
            "Flat",
            CarbonIntensity::new(10.0),
        ));
        assert_eq!(svc.region(), "Flat");
    }
}
