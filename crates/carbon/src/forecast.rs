//! Simple carbon-intensity forecasting.
//!
//! Not required by the paper's core API (Table 1 exposes only the current
//! intensity), but the paper's library layer (§3.2) anticipates richer
//! services built on the historical TSDB. This module provides a
//! diurnal-average forecaster that policies can use to anticipate
//! low-carbon windows — an extension listed in DESIGN.md §7 and exercised
//! by the carbon-arbitrage policy.

use simkit::time::{SimDuration, SimTime};
use simkit::units::CarbonIntensity;

use crate::service::CarbonService;

/// Forecasts future carbon intensity from the recent diurnal pattern.
///
/// The estimate for time `t + h` is the average of the intensity observed
/// at the same time-of-day over the previous `lookback_days` days, blended
/// toward the current observation for short horizons (persistence).
#[derive(Debug, Clone)]
pub struct DiurnalForecaster {
    lookback_days: u64,
    /// Horizon (in hours) over which persistence dominates the blend.
    persistence_hours: f64,
}

impl Default for DiurnalForecaster {
    fn default() -> Self {
        Self {
            lookback_days: 3,
            persistence_hours: 1.0,
        }
    }
}

impl DiurnalForecaster {
    /// Creates a forecaster averaging over `lookback_days` prior days.
    ///
    /// # Panics
    ///
    /// Panics if `lookback_days` is zero.
    pub fn new(lookback_days: u64) -> Self {
        assert!(lookback_days > 0, "lookback must be at least one day");
        Self {
            lookback_days,
            persistence_hours: 1.0,
        }
    }

    /// Forecasts the intensity at `now + horizon` using `service` history.
    ///
    /// Falls back to the current intensity when insufficient history is
    /// available (early in a simulation).
    pub fn forecast(
        &self,
        service: &dyn CarbonService,
        now: SimTime,
        horizon: SimDuration,
    ) -> CarbonIntensity {
        let current = service.current_intensity(now);
        let target = now + horizon;

        // Same-time-of-day observations over the lookback window.
        let mut values = Vec::new();
        for d in 1..=self.lookback_days {
            let back = SimDuration::from_days(d);
            if target.as_secs() >= back.as_secs() {
                let t = target - back;
                values.push(service.current_intensity(t).grams_per_kwh());
            }
        }
        if values.is_empty() {
            return current;
        }
        let diurnal_avg = values.iter().sum::<f64>() / values.len() as f64;

        // Blend: pure persistence at horizon 0, pure diurnal past the
        // persistence window.
        let w = (horizon.as_hours() / self.persistence_hours).clamp(0.0, 1.0);
        CarbonIntensity::new(current.grams_per_kwh() * (1.0 - w) + diurnal_avg * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CarbonTraceBuilder;
    use crate::regions;
    use crate::service::ConstantCarbonService;

    #[test]
    fn zero_horizon_returns_current() {
        let svc = CarbonTraceBuilder::new(regions::california())
            .days(4)
            .seed(1)
            .build_service();
        let f = DiurnalForecaster::default();
        let now = SimTime::from_hours(72);
        use crate::service::CarbonService as _;
        let fc = f.forecast(&svc, now, SimDuration::ZERO);
        assert_eq!(fc, svc.current_intensity(now));
    }

    #[test]
    fn constant_signal_forecasts_itself() {
        let svc = ConstantCarbonService::new("C", CarbonIntensity::new(123.0));
        let f = DiurnalForecaster::new(2);
        let fc = f.forecast(&svc, SimTime::from_hours(50), SimDuration::from_hours(6));
        assert!((fc.grams_per_kwh() - 123.0).abs() < 1e-12);
    }

    #[test]
    fn long_horizon_tracks_diurnal_shape() {
        // With a strongly diurnal region, the 8-hour-ahead forecast made at
        // midday (low) for evening (high) should exceed the current value.
        let svc = CarbonTraceBuilder::new(regions::california())
            .days(6)
            .seed(3)
            .build_service();
        use crate::service::CarbonService as _;
        let f = DiurnalForecaster::new(3);
        let now = SimTime::from_hours(4 * 24 + 12); // day 4, noon
        let fc = f.forecast(&svc, now, SimDuration::from_hours(8));
        let cur = svc.current_intensity(now);
        assert!(
            fc.grams_per_kwh() > cur.grams_per_kwh(),
            "evening forecast {fc} should exceed midday current {cur}"
        );
    }

    #[test]
    fn insufficient_history_falls_back() {
        let svc = CarbonTraceBuilder::new(regions::ontario())
            .days(1)
            .seed(2)
            .build_service();
        use crate::service::CarbonService as _;
        let f = DiurnalForecaster::new(5);
        let now = SimTime::from_hours(0);
        // horizon within the first day, no lookback available
        let fc = f.forecast(&svc, now, SimDuration::from_hours(2));
        // Should not panic and should be positive.
        assert!(fc.grams_per_kwh() > 0.0);
        let _ = svc.current_intensity(now);
    }
}
