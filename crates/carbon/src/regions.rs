//! Regional carbon-intensity profiles fitted to the paper's Figure 1.
//!
//! Each [`RegionProfile`] parameterizes the synthetic trace generator:
//! a mean level, a 24-hour diurnal shape (piecewise-linear multiplier over
//! hour-of-day), weekday/weekend modulation, mean-reverting noise, and
//! occasional multi-hour excursions (generation-mix shifts). Profiles for
//! Ontario, California, and Uruguay reproduce the levels and volatility
//! visible in Fig. 1; the California profile doubles as the CAISO-2020
//! stand-in used throughout §5.

use serde::{Deserialize, Serialize};

/// A serializable *name* for one of the built-in regional profiles, so
/// a scenario spec can say "California" instead of embedding (and
/// possibly drifting from) the full parameter set. Use
/// [`RegionKind::profile`] to materialize the parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// Nuclear-dominated, low and flat (~25-45 g/kWh).
    Ontario,
    /// Hydro with wind swings (~40-110 g/kWh).
    Uruguay,
    /// CAISO: fossil base, deep solar duck curve, evening peaks
    /// (~90-350 g/kWh) -- the paper's Section 5 signal.
    California,
}

impl RegionKind {
    /// The built-in profile this name denotes.
    pub fn profile(self) -> RegionProfile {
        match self {
            RegionKind::Ontario => ontario(),
            RegionKind::Uruguay => uruguay(),
            RegionKind::California => california(),
        }
    }

    /// Stable lowercase name (CLI vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Ontario => "ontario",
            RegionKind::Uruguay => "uruguay",
            RegionKind::California => "california",
        }
    }

    /// Every built-in region, in Figure 1 order.
    pub fn all() -> [RegionKind; 3] {
        [
            RegionKind::Ontario,
            RegionKind::Uruguay,
            RegionKind::California,
        ]
    }
}

impl std::str::FromStr for RegionKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ontario" => Ok(RegionKind::Ontario),
            "uruguay" => Ok(RegionKind::Uruguay),
            "california" | "caiso" => Ok(RegionKind::California),
            other => Err(format!("unknown region `{other}`")),
        }
    }
}

/// Parameter set describing one grid region's carbon-intensity behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionProfile {
    /// Human-readable region name (e.g. `"California"`).
    pub name: String,
    /// Mean carbon intensity in g·CO2/kWh.
    pub base_intensity: f64,
    /// Piecewise-linear diurnal multiplier: `(hour_of_day, multiplier)`
    /// control points, cyclic over 24 h. Must be sorted by hour.
    pub diurnal_shape: Vec<(f64, f64)>,
    /// Multiplier applied on weekends (days 5 and 6 of each week).
    pub weekend_factor: f64,
    /// Standard deviation of the mean-reverting (OU) noise process,
    /// relative to `base_intensity`.
    pub noise_std: f64,
    /// Mean-reversion rate of the noise process, per hour.
    pub noise_reversion: f64,
    /// Probability per hour of an excursion (generation-mix shift) starting.
    pub excursion_prob_per_hour: f64,
    /// Relative magnitude range of excursions `(lo, hi)`; sign is random.
    pub excursion_magnitude: (f64, f64),
    /// Excursion duration range in hours `(lo, hi)`.
    pub excursion_hours: (f64, f64),
    /// Hard floor for generated intensity, g·CO2/kWh.
    pub floor: f64,
    /// Hard ceiling for generated intensity, g·CO2/kWh.
    pub ceiling: f64,
}

impl RegionProfile {
    /// Evaluates the diurnal multiplier at an hour-of-day in `[0, 24)`,
    /// interpolating linearly and wrapping across midnight.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no diurnal control points.
    pub fn diurnal_multiplier(&self, hour: f64) -> f64 {
        assert!(
            !self.diurnal_shape.is_empty(),
            "diurnal shape must have control points"
        );
        let h = hour.rem_euclid(24.0);
        let pts = &self.diurnal_shape;
        if pts.len() == 1 {
            return pts[0].1;
        }
        // Find the segment containing h, wrapping the last->first segment
        // across midnight.
        for w in pts.windows(2) {
            let (h0, m0) = w[0];
            let (h1, m1) = w[1];
            if h >= h0 && h < h1 {
                let frac = (h - h0) / (h1 - h0);
                return m0 + frac * (m1 - m0);
            }
        }
        // Wrap segment: from last point to first point + 24h.
        let (h0, m0) = *pts.last().expect("non-empty");
        let (h1, m1) = (pts[0].0 + 24.0, pts[0].1);
        let h_adj = if h < h0 { h + 24.0 } else { h };
        let frac = ((h_adj - h0) / (h1 - h0)).clamp(0.0, 1.0);
        m0 + frac * (m1 - m0)
    }
}

/// Ontario, Canada: nuclear-dominated, lowest and flattest intensity in
/// Fig. 1 (~25–45 g/kWh).
pub fn ontario() -> RegionProfile {
    RegionProfile {
        name: "Ontario".to_string(),
        base_intensity: 32.0,
        diurnal_shape: vec![
            (0.0, 0.92),
            (6.0, 0.95),
            (10.0, 1.05),
            (18.0, 1.12),
            (22.0, 1.0),
        ],
        weekend_factor: 0.95,
        noise_std: 0.06,
        noise_reversion: 0.5,
        excursion_prob_per_hour: 0.01,
        excursion_magnitude: (0.1, 0.25),
        excursion_hours: (1.0, 3.0),
        floor: 18.0,
        ceiling: 60.0,
    }
}

/// Uruguay: hydro-dominated with wind variability, slightly above Ontario
/// in Fig. 1 (~40–110 g/kWh) with visible swings.
pub fn uruguay() -> RegionProfile {
    RegionProfile {
        name: "Uruguay".to_string(),
        base_intensity: 68.0,
        diurnal_shape: vec![
            (0.0, 0.85),
            (7.0, 1.0),
            (13.0, 1.05),
            (20.0, 1.2),
            (23.0, 0.95),
        ],
        weekend_factor: 0.9,
        noise_std: 0.15,
        noise_reversion: 0.35,
        excursion_prob_per_hour: 0.03,
        excursion_magnitude: (0.2, 0.5),
        excursion_hours: (2.0, 6.0),
        floor: 25.0,
        ceiling: 140.0,
    }
}

/// California (CAISO): highest intensity and variability in Fig. 1
/// (~90–350 g/kWh) — the "duck curve": deep midday dips from utility
/// solar, steep evening ramps onto gas peakers. This is the profile the
/// §5 experiments run against (CAISO 2020 stand-in).
pub fn california() -> RegionProfile {
    RegionProfile {
        name: "California".to_string(),
        base_intensity: 230.0,
        diurnal_shape: vec![
            (0.0, 1.05),
            (4.0, 1.0),
            (7.0, 1.1),
            (9.0, 0.85),
            (12.0, 0.55), // midday solar dip
            (15.0, 0.65),
            (18.0, 1.15), // evening ramp
            (20.0, 1.35), // peak
            (23.0, 1.12),
        ],
        weekend_factor: 0.93,
        noise_std: 0.10,
        noise_reversion: 0.4,
        excursion_prob_per_hour: 0.045,
        excursion_magnitude: (0.15, 0.45),
        excursion_hours: (2.0, 9.0),
        floor: 80.0,
        ceiling: 360.0,
    }
}

/// All three Figure-1 regions in display order.
pub fn figure1_regions() -> Vec<RegionProfile> {
    vec![ontario(), california(), uruguay()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_interpolation_within_segment() {
        let p = california();
        // Between (9.0, 0.85) and (12.0, 0.55): at 10.5 expect midpoint 0.70.
        let m = p.diurnal_multiplier(10.5);
        assert!((m - 0.70).abs() < 1e-9, "got {m}");
    }

    #[test]
    fn diurnal_wraps_midnight() {
        let p = california();
        // Between (23.0, 1.12) and (24.0 -> 0.0, 1.05): halfway at 23.5.
        let m = p.diurnal_multiplier(23.5);
        assert!((m - 1.085).abs() < 1e-9, "got {m}");
        // Hour 24 aliases hour 0.
        assert!((p.diurnal_multiplier(24.0) - p.diurnal_multiplier(0.0)).abs() < 1e-12);
    }

    #[test]
    fn diurnal_negative_hours_wrap() {
        let p = ontario();
        assert!((p.diurnal_multiplier(-1.0) - p.diurnal_multiplier(23.0)).abs() < 1e-12);
    }

    #[test]
    fn california_has_duck_curve() {
        let p = california();
        let midday = p.diurnal_multiplier(12.0);
        let evening = p.diurnal_multiplier(20.0);
        let night = p.diurnal_multiplier(2.0);
        assert!(midday < night, "midday dip below night level");
        assert!(evening > night, "evening peak above night level");
        assert!(evening / midday > 2.0, "duck-curve swing should exceed 2x");
    }

    #[test]
    fn region_ordering_matches_figure1() {
        // Fig. 1: Ontario lowest, Uruguay middle, California highest.
        assert!(ontario().base_intensity < uruguay().base_intensity);
        assert!(uruguay().base_intensity < california().base_intensity);
    }

    #[test]
    fn figure1_regions_named() {
        let names: Vec<String> = figure1_regions().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["Ontario", "California", "Uruguay"]);
    }
}
