//! Synthetic carbon-intensity trace generation.
//!
//! [`CarbonTraceBuilder`] turns a [`RegionProfile`] into a concrete
//! [`Trace`] sampled every 5 minutes (the granularity at which the paper's
//! ecovisor polls electricityMap, §2). Generation is fully deterministic
//! given a seed: the noise is a mean-reverting Ornstein–Uhlenbeck process
//! and excursions (multi-hour generation-mix shifts) are sampled from the
//! profile's excursion parameters.
//!
//! The long high-carbon excursions matter for fidelity: the paper's
//! suspend-resume experiments see 5–7× runtime inflation precisely because
//! "jobs that happen to start executing during a long high-carbon period
//! are forced to stop and wait" (§5.1.2).

use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{Extend, Sampling, Trace};

use crate::regions::RegionProfile;
use crate::service::TraceCarbonService;

/// Default sample spacing: electricityMap-style 5-minute estimates.
pub const DEFAULT_STEP: SimDuration = SimDuration::from_secs(300);

/// Builder producing deterministic carbon-intensity traces for a region.
///
/// # Example
///
/// ```
/// use carbon_intel::{regions, CarbonTraceBuilder};
///
/// let trace = CarbonTraceBuilder::new(regions::ontario())
///     .days(1)
///     .seed(7)
///     .build();
/// assert_eq!(trace.len(), 288); // one day of 5-minute samples
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CarbonTraceBuilder {
    profile: RegionProfile,
    days: u64,
    step: SimDuration,
    seed: u64,
}

impl CarbonTraceBuilder {
    /// Starts a builder for the given region profile with 2 days of data,
    /// 5-minute steps, and seed 0.
    pub fn new(profile: RegionProfile) -> Self {
        Self {
            profile,
            days: 2,
            step: DEFAULT_STEP,
            seed: 0,
        }
    }

    /// Sets the number of days to generate.
    pub fn days(mut self, days: u64) -> Self {
        self.days = days;
        self
    }

    /// Sets the sample spacing.
    pub fn step(mut self, step: SimDuration) -> Self {
        self.step = step;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the intensity trace (g·CO2/kWh per sample).
    ///
    /// # Panics
    ///
    /// Panics if configured for zero days or a zero step.
    pub fn build(&self) -> Trace {
        assert!(self.days > 0, "trace must cover at least one day");
        assert!(!self.step.is_zero(), "step must be non-zero");
        let p = &self.profile;
        let mut rng = SimRng::from_seed(self.seed).fork(&format!("carbon/{}", p.name));
        let step_hours = self.step.as_hours();
        let n = (self.days * simkit::time::SECS_PER_DAY) / self.step.as_secs();

        // Ornstein–Uhlenbeck noise state (relative, mean 0).
        let mut noise = 0.0_f64;
        // Active excursion: (remaining_hours, relative_magnitude).
        let mut excursion: Option<(f64, f64)> = None;

        let mut samples = Vec::with_capacity(n as usize);
        for i in 0..n {
            let at = SimTime::from_secs(i * self.step.as_secs());
            let hour = at.hour_of_day();
            let day = at.day_index();
            let weekend = day % 7 >= 5;

            // Evolve OU noise.
            let theta = p.noise_reversion;
            let sigma = p.noise_std;
            noise += -theta * noise * step_hours
                + sigma * (2.0 * theta * step_hours).sqrt() * rng.normal(0.0, 1.0);

            // Excursion lifecycle.
            match &mut excursion {
                Some((remaining, _)) => {
                    *remaining -= step_hours;
                    if *remaining <= 0.0 {
                        excursion = None;
                    }
                }
                None => {
                    if rng.chance(p.excursion_prob_per_hour * step_hours) {
                        let hours = rng.uniform(p.excursion_hours.0, p.excursion_hours.1);
                        let mag = rng.uniform(p.excursion_magnitude.0, p.excursion_magnitude.1);
                        let sign = if rng.chance(0.65) { 1.0 } else { -1.0 };
                        excursion = Some((hours, sign * mag));
                    }
                }
            }
            let excursion_mult = 1.0 + excursion.map(|(_, m)| m).unwrap_or(0.0);

            let diurnal = p.diurnal_multiplier(hour);
            let weekly = if weekend { p.weekend_factor } else { 1.0 };
            let value = (p.base_intensity * diurnal * weekly * excursion_mult * (1.0 + noise))
                .clamp(p.floor, p.ceiling);
            samples.push(value);
        }
        Trace::from_samples(samples, self.step)
            .with_sampling(Sampling::Step)
            .with_extend(Extend::Cycle)
    }

    /// Generates the trace and wraps it in a query service.
    pub fn build_service(&self) -> TraceCarbonService {
        TraceCarbonService::new(self.profile.name.clone(), self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions;
    use simkit::stats;

    fn day_samples(profile: RegionProfile, days: u64, seed: u64) -> Vec<f64> {
        CarbonTraceBuilder::new(profile)
            .days(days)
            .seed(seed)
            .build()
            .samples()
            .to_vec()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = day_samples(regions::california(), 2, 11);
        let b = day_samples(regions::california(), 2, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = day_samples(regions::california(), 2, 1);
        let b = day_samples(regions::california(), 2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_floor_and_ceiling() {
        for seed in 0..5 {
            let p = regions::california();
            for v in day_samples(p.clone(), 4, seed) {
                assert!(v >= p.floor && v <= p.ceiling, "sample {v} out of bounds");
            }
        }
    }

    #[test]
    fn california_more_volatile_than_ontario() {
        let ca = day_samples(regions::california(), 7, 3);
        let on = day_samples(regions::ontario(), 7, 3);
        let rel_std = |xs: &[f64]| {
            stats::std_dev(xs).expect("non-empty") / stats::mean(xs).expect("non-empty")
        };
        assert!(
            rel_std(&ca) > 1.5 * rel_std(&on),
            "CA rel-std {} should exceed ON rel-std {}",
            rel_std(&ca),
            rel_std(&on)
        );
    }

    #[test]
    fn mean_levels_match_figure1_ordering() {
        let mean = |p: RegionProfile| {
            let xs = day_samples(p, 7, 9);
            stats::mean(&xs).expect("non-empty")
        };
        let (on, uy, ca) = (
            mean(regions::ontario()),
            mean(regions::uruguay()),
            mean(regions::california()),
        );
        assert!(on < uy && uy < ca, "ordering violated: {on} {uy} {ca}");
        // Fig. 1 levels: Ontario tens, California low hundreds.
        assert!((20.0..60.0).contains(&on), "Ontario mean {on}");
        assert!((120.0..330.0).contains(&ca), "California mean {ca}");
    }

    #[test]
    fn midday_dip_visible_in_california() {
        let trace = CarbonTraceBuilder::new(regions::california())
            .days(6)
            .seed(5)
            .build();
        // Average across days at 12:00 vs 20:00.
        let mut midday = 0.0;
        let mut evening = 0.0;
        for d in 0..6 {
            midday += trace.sample(SimTime::from_hours(d * 24 + 12));
            evening += trace.sample(SimTime::from_hours(d * 24 + 20));
        }
        assert!(
            evening > 1.4 * midday,
            "evening {evening} should exceed midday {midday} by >1.4x"
        );
    }

    #[test]
    fn sample_count_matches_days_and_step() {
        let t = CarbonTraceBuilder::new(regions::uruguay())
            .days(3)
            .step(SimDuration::from_minutes(10))
            .build();
        assert_eq!(t.len(), 3 * 144);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_rejected() {
        CarbonTraceBuilder::new(regions::ontario()).days(0).build();
    }
}
