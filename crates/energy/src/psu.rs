//! Programmable power supply.
//!
//! The paper validated its software power caps by feeding the cluster
//! from "a programmable power supply that was capable of accurately
//! monitoring grid power consumption ... to verify that our system's power
//! usage never exceeded the limit dictated by the container power caps"
//! (§4, "Grid Power"). [`ProgrammablePsu`] plays that role: it meters
//! every draw and records violations of a configured limit, which the
//! integration tests assert to be empty.

use serde::{Deserialize, Serialize};

use simkit::time::{SimDuration, SimTime};
use simkit::units::{WattHours, Watts};

/// A recorded over-limit event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// When the violation occurred.
    pub at: SimTime,
    /// Power drawn at that instant.
    pub drawn: Watts,
    /// Limit in force at that instant.
    pub limit: Watts,
}

/// A metering power supply with an optional programmable limit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProgrammablePsu {
    limit: Option<Watts>,
    total_energy: WattHours,
    peak: Watts,
    violations: Vec<Violation>,
    samples: u64,
}

impl ProgrammablePsu {
    /// Creates an unlimited metering supply.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the power limit used for violation detection.
    pub fn set_limit(&mut self, limit: Option<Watts>) {
        self.limit = limit;
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<Watts> {
        self.limit
    }

    /// Records a draw of `power` for `dt` starting at `at`.
    ///
    /// Unlike a breaker, the PSU does not clip the draw — it *records*
    /// violations so tests can verify software capping kept demand legal.
    pub fn record_draw(&mut self, at: SimTime, power: Watts, dt: SimDuration) {
        let p = power.max_zero();
        self.total_energy += p * dt;
        self.peak = self.peak.max(p);
        self.samples += 1;
        if let Some(limit) = self.limit {
            // Tolerate floating-point residue from settlement arithmetic.
            if p.watts() > limit.watts() + 1e-6 {
                self.violations.push(Violation {
                    at,
                    drawn: p,
                    limit,
                });
            }
        }
    }

    /// Total energy delivered.
    pub fn total_energy(&self) -> WattHours {
        self.total_energy
    }

    /// Peak instantaneous power observed.
    pub fn peak(&self) -> Watts {
        self.peak
    }

    /// Number of draw samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// All recorded over-limit events.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` when no draw ever exceeded the limit.
    pub fn limit_respected(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> SimDuration {
        SimDuration::from_minutes(1)
    }

    #[test]
    fn meters_energy_and_peak() {
        let mut psu = ProgrammablePsu::new();
        psu.record_draw(SimTime::from_secs(0), Watts::new(60.0), minute());
        psu.record_draw(SimTime::from_secs(60), Watts::new(120.0), minute());
        assert!((psu.total_energy().watt_hours() - 3.0).abs() < 1e-9);
        assert_eq!(psu.peak(), Watts::new(120.0));
        assert_eq!(psu.samples(), 2);
        assert!(psu.limit_respected());
    }

    #[test]
    fn detects_violations() {
        let mut psu = ProgrammablePsu::new();
        psu.set_limit(Some(Watts::new(100.0)));
        psu.record_draw(SimTime::from_secs(0), Watts::new(99.9), minute());
        psu.record_draw(SimTime::from_secs(60), Watts::new(100.5), minute());
        assert_eq!(psu.violations().len(), 1);
        assert!(!psu.limit_respected());
        assert_eq!(psu.violations()[0].drawn, Watts::new(100.5));
        assert_eq!(psu.violations()[0].at, SimTime::from_secs(60));
    }

    #[test]
    fn tolerates_floating_point_residue() {
        let mut psu = ProgrammablePsu::new();
        psu.set_limit(Some(Watts::new(100.0)));
        psu.record_draw(SimTime::from_secs(0), Watts::new(100.0 + 1e-9), minute());
        assert!(psu.limit_respected());
    }

    #[test]
    fn negative_draws_clamped() {
        let mut psu = ProgrammablePsu::new();
        psu.record_draw(SimTime::from_secs(0), Watts::new(-5.0), minute());
        assert_eq!(psu.total_energy(), WattHours::ZERO);
        assert_eq!(psu.peak(), Watts::ZERO);
    }
}
