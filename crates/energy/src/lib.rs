//! # energy-system — physical energy system substrate
//!
//! Software model of the hardware the ecovisor prototype virtualizes
//! (paper §4): a grid connection behind a programmable power supply, a
//! battery bank with two smart charge controllers, and a solar array
//! emulator.
//!
//! The paper's hardware constants are the defaults here:
//!
//! * Battery bank: 1,440 Wh, discharged only to 70 % depth (30 %
//!   state-of-charge is "empty"), 0.25C max charge (full in 4 h),
//!   1C max discharge (1,440 W).
//! * Solar: a Chroma 62020H-150S solar-array emulator replaying
//!   irradiance traces — reproduced by [`solar::SolarArrayBuilder`], a
//!   clear-sky bell curve modulated by stochastic weather.
//! * Grid: effectively unlimited supply, metered by the programmable PSU.
//!
//! [`system::PhysicalEnergySystem`] composes the three sources and settles
//! aggregate energy flows each tick; the ecovisor (crate `ecovisor`)
//! multiplexes it across applications' virtual energy systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod charge_controller;
pub mod grid;
pub mod psu;
pub mod solar;
pub mod system;

pub use battery::{Battery, BatterySpec};
pub use charge_controller::{GridChargeController, SolarChargeController};
pub use grid::GridConnection;
pub use psu::ProgrammablePsu;
pub use solar::{SolarArrayBuilder, SolarSource, TraceSolarSource};
pub use system::{PhysicalEnergySystem, PhysicalFlows};
