//! Solar array emulator.
//!
//! The paper's prototype uses a Chroma 62020H-150S solar-array emulator —
//! "a programmable power supply that mimics the electrical response of a
//! solar module's IV curve" replaying irradiance traces (§4). What the
//! ecovisor observes is simply the array's power output over time, so the
//! model here generates exactly that: a clear-sky bell curve over daylight
//! hours scaled by the array rating, attenuated by a stochastic weather
//! process (slow cloud-cover fronts plus fast scatter).

use serde::{Deserialize, Serialize};

use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{Extend, Sampling, Trace};
use simkit::units::Watts;

/// A source of solar power output over simulated time.
pub trait SolarSource: Send + Sync {
    /// Instantaneous array output at `at`.
    fn power_at(&self, at: SimTime) -> Watts;

    /// Mean output over a tick window (default: midpoint sample).
    fn mean_power_over(&self, from: SimTime, to: SimTime) -> Watts {
        if to <= from {
            return self.power_at(from);
        }
        let mid = SimTime::from_secs((from.as_secs() + to.as_secs()) / 2);
        self.power_at(mid)
    }
}

/// A [`SolarSource`] backed by a pre-generated power trace (the digital
/// twin of the Chroma SAE's trace replay).
#[derive(Debug, Clone)]
pub struct TraceSolarSource {
    trace: Trace,
}

impl TraceSolarSource {
    /// Wraps a trace of power samples in watts.
    pub fn new(trace: Trace) -> Self {
        Self { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl SolarSource for TraceSolarSource {
    fn power_at(&self, at: SimTime) -> Watts {
        Watts::new(self.trace.sample(at).max(0.0))
    }
}

/// Weather regime controlling cloud attenuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Weather {
    /// Cloudless days: pure clear-sky bell curve.
    Clear,
    /// Mixed conditions: slow cloud fronts plus fast scatter (default).
    #[default]
    Mixed,
    /// Heavily overcast: strong persistent attenuation.
    Overcast,
}

impl Weather {
    /// `(front_probability_per_hour, attenuation_range, scatter_std)`.
    fn parameters(self) -> (f64, (f64, f64), f64) {
        match self {
            Weather::Clear => (0.0, (0.0, 0.0), 0.01),
            Weather::Mixed => (0.12, (0.2, 0.7), 0.05),
            Weather::Overcast => (0.5, (0.5, 0.9), 0.08),
        }
    }
}

/// Builder for deterministic solar output traces.
///
/// # Example
///
/// ```
/// use energy_system::solar::{SolarArrayBuilder, SolarSource, Weather};
/// use simkit::time::SimTime;
///
/// let array = SolarArrayBuilder::new(400.0) // 400 W rated
///     .days(1)
///     .weather(Weather::Clear)
///     .seed(1)
///     .build_source();
/// let noon = array.power_at(SimTime::from_hours(12));
/// let midnight = array.power_at(SimTime::from_hours(0));
/// assert!(noon.watts() > 300.0);
/// assert_eq!(midnight.watts(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolarArrayBuilder {
    rated_watts: f64,
    days: u64,
    step: SimDuration,
    seed: u64,
    weather: Weather,
    sunrise_hour: f64,
    sunset_hour: f64,
}

impl SolarArrayBuilder {
    /// Starts a builder for an array with the given rated output (watts at
    /// peak clear-sky irradiance).
    ///
    /// # Panics
    ///
    /// Panics if `rated_watts` is not positive.
    pub fn new(rated_watts: f64) -> Self {
        assert!(rated_watts > 0.0, "rated power must be positive");
        Self {
            rated_watts,
            days: 2,
            step: SimDuration::from_minutes(5),
            seed: 0,
            weather: Weather::Mixed,
            sunrise_hour: 6.0,
            sunset_hour: 19.0,
        }
    }

    /// Sets the number of days to generate.
    pub fn days(mut self, days: u64) -> Self {
        self.days = days;
        self
    }

    /// Sets the sample spacing.
    pub fn step(mut self, step: SimDuration) -> Self {
        self.step = step;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the weather regime.
    pub fn weather(mut self, weather: Weather) -> Self {
        self.weather = weather;
        self
    }

    /// Sets daylight hours (defaults 6:00–19:00).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= sunrise < sunset <= 24`.
    pub fn daylight(mut self, sunrise_hour: f64, sunset_hour: f64) -> Self {
        assert!(
            0.0 <= sunrise_hour && sunrise_hour < sunset_hour && sunset_hour <= 24.0,
            "daylight window must satisfy 0 <= sunrise < sunset <= 24"
        );
        self.sunrise_hour = sunrise_hour;
        self.sunset_hour = sunset_hour;
        self
    }

    /// Clear-sky output fraction at an hour-of-day: a sine bell between
    /// sunrise and sunset, zero at night.
    pub fn clear_sky_fraction(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        if h <= self.sunrise_hour || h >= self.sunset_hour {
            return 0.0;
        }
        let x = (h - self.sunrise_hour) / (self.sunset_hour - self.sunrise_hour);
        (std::f64::consts::PI * x).sin().powf(1.2)
    }

    /// Generates the output power trace (watts per sample).
    ///
    /// # Panics
    ///
    /// Panics if configured for zero days or a zero step.
    pub fn build(&self) -> Trace {
        assert!(self.days > 0, "trace must cover at least one day");
        assert!(!self.step.is_zero(), "step must be non-zero");
        let mut rng = SimRng::from_seed(self.seed).fork("solar");
        let (front_prob, atten_range, scatter_std) = self.weather.parameters();
        let step_hours = self.step.as_hours();
        let n = (self.days * simkit::time::SECS_PER_DAY) / self.step.as_secs();

        // Active cloud front: (remaining_hours, attenuation in [0,1]).
        let mut front: Option<(f64, f64)> = None;
        let mut samples = Vec::with_capacity(n as usize);
        for i in 0..n {
            let at = SimTime::from_secs(i * self.step.as_secs());
            let clear = self.clear_sky_fraction(at.hour_of_day());

            match &mut front {
                Some((remaining, _)) => {
                    *remaining -= step_hours;
                    if *remaining <= 0.0 {
                        front = None;
                    }
                }
                None => {
                    if front_prob > 0.0 && rng.chance(front_prob * step_hours) {
                        let hours = rng.uniform(0.5, 4.0);
                        let atten = rng.uniform(atten_range.0, atten_range.1);
                        front = Some((hours, atten));
                    }
                }
            }
            let attenuation = 1.0 - front.map(|(_, a)| a).unwrap_or(0.0);
            let scatter = (1.0 + rng.normal(0.0, scatter_std)).clamp(0.0, 1.15);
            let power = (self.rated_watts * clear * attenuation * scatter).max(0.0);
            samples.push(power);
        }
        Trace::from_samples(samples, self.step)
            .with_sampling(Sampling::Step)
            .with_extend(Extend::Cycle)
    }

    /// Generates the trace and wraps it as a [`SolarSource`].
    pub fn build_source(&self) -> TraceSolarSource {
        TraceSolarSource::new(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn night_output_is_zero() {
        let src = SolarArrayBuilder::new(400.0).days(2).seed(3).build_source();
        for h in [0u64, 3, 5, 20, 23] {
            assert_eq!(
                src.power_at(SimTime::from_hours(h)).watts(),
                0.0,
                "hour {h}"
            );
        }
    }

    #[test]
    fn clear_noon_near_rated() {
        let src = SolarArrayBuilder::new(400.0)
            .days(1)
            .weather(Weather::Clear)
            .seed(1)
            .build_source();
        let noon = src.power_at(SimTime::from_hours(12)).watts();
        assert!((350.0..=440.0).contains(&noon), "noon output {noon}");
    }

    #[test]
    fn overcast_dimmer_than_clear() {
        let daily_energy = |w: Weather| {
            let src = SolarArrayBuilder::new(400.0)
                .days(3)
                .weather(w)
                .seed(7)
                .build_source();
            let mut total = 0.0;
            for m in (0..(3 * 24 * 60)).step_by(5) {
                total += src.power_at(SimTime::from_secs(m * 60)).watts() / 12.0;
            }
            total
        };
        let clear = daily_energy(Weather::Clear);
        let overcast = daily_energy(Weather::Overcast);
        assert!(
            overcast < 0.7 * clear,
            "overcast {overcast} should be well below clear {clear}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SolarArrayBuilder::new(300.0).days(2).seed(9).build();
        let b = SolarArrayBuilder::new(300.0).days(2).seed(9).build();
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn never_negative_never_wildly_above_rated() {
        let src = SolarArrayBuilder::new(250.0)
            .days(4)
            .seed(11)
            .build_source();
        for m in (0..(4 * 24 * 60)).step_by(7) {
            let p = src.power_at(SimTime::from_secs(m * 60)).watts();
            assert!(p >= 0.0, "negative output at minute {m}");
            assert!(p <= 250.0 * 1.15 + 1e-9, "output {p} above scatter ceiling");
        }
    }

    #[test]
    fn clear_sky_fraction_shape() {
        let b = SolarArrayBuilder::new(100.0);
        assert_eq!(b.clear_sky_fraction(6.0), 0.0);
        assert_eq!(b.clear_sky_fraction(19.0), 0.0);
        let mid = b.clear_sky_fraction(12.5);
        assert!(mid > 0.95, "midday fraction {mid}");
        assert!(b.clear_sky_fraction(8.0) < mid);
    }

    #[test]
    fn mean_power_over_window() {
        let src = SolarArrayBuilder::new(400.0)
            .days(1)
            .weather(Weather::Clear)
            .seed(2)
            .build_source();
        let m = src.mean_power_over(SimTime::from_hours(11), SimTime::from_hours(13));
        assert!(m.watts() > 300.0);
        // Degenerate window falls back to a point sample.
        let p = src.mean_power_over(SimTime::from_hours(12), SimTime::from_hours(12));
        assert!(p.watts() > 300.0);
    }

    #[test]
    fn custom_daylight_window() {
        let src = SolarArrayBuilder::new(100.0)
            .daylight(8.0, 16.0)
            .weather(Weather::Clear)
            .days(1)
            .build_source();
        assert_eq!(src.power_at(SimTime::from_hours(7)).watts(), 0.0);
        assert!(src.power_at(SimTime::from_hours(12)).watts() > 80.0);
        assert_eq!(src.power_at(SimTime::from_hours(17)).watts(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rated power must be positive")]
    fn zero_rating_rejected() {
        SolarArrayBuilder::new(0.0);
    }
}
