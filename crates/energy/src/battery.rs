//! Battery bank model.
//!
//! Reproduces the paper's prototype battery (§4, "Battery Power"): a
//! 1,440 Wh lithium-ion bank whose charge controller only discharges to
//! 70 % depth (30 % state-of-charge counts as *empty*, since deep
//! discharges shorten cycle life), charges at up to 0.25C, and discharges
//! at up to 1C. The model integrates state of charge over tick intervals,
//! enforces rate and capacity limits, and counts equivalent full cycles
//! for the battery-wear extension.

use serde::{Deserialize, Serialize};

use simkit::time::SimDuration;
use simkit::units::{WattHours, Watts};

/// Static parameters of a battery bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Nameplate energy capacity.
    pub capacity: WattHours,
    /// Fraction of capacity below which the bank reports empty
    /// (0.30 in the paper: 70 % usable depth of discharge).
    pub min_soc_fraction: f64,
    /// Maximum charging power (0.25C in the paper).
    pub max_charge_rate: Watts,
    /// Maximum discharging power (1C in the paper).
    pub max_discharge_rate: Watts,
    /// One-way charge efficiency in `(0, 1]`; energy drawn from a source
    /// is multiplied by this before being stored. The paper does not
    /// model losses, so the default is 1.0.
    pub charge_efficiency: f64,
}

impl BatterySpec {
    /// The paper's prototype bank: 1,440 Wh, 30 % floor, 0.25C / 1C.
    pub fn paper_prototype() -> Self {
        let capacity = WattHours::new(1440.0);
        Self {
            capacity,
            min_soc_fraction: 0.30,
            max_charge_rate: Watts::new(1440.0 * 0.25),
            max_discharge_rate: Watts::new(1440.0),
            charge_efficiency: 1.0,
        }
    }

    /// A bank scaled to `capacity`, keeping the paper's C-rates and floor.
    pub fn with_capacity(capacity: WattHours) -> Self {
        Self {
            capacity,
            min_soc_fraction: 0.30,
            max_charge_rate: Watts::new(capacity.watt_hours() * 0.25),
            max_discharge_rate: Watts::new(capacity.watt_hours()),
            charge_efficiency: 1.0,
        }
    }

    /// Energy level regarded as empty.
    pub fn floor_energy(&self) -> WattHours {
        self.capacity * self.min_soc_fraction
    }

    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity.watt_hours() <= 0.0 {
            return Err("capacity must be positive".into());
        }
        if !(0.0..1.0).contains(&self.min_soc_fraction) {
            return Err("min_soc_fraction must be in [0, 1)".into());
        }
        if self.max_charge_rate.watts() < 0.0 || self.max_discharge_rate.watts() < 0.0 {
            return Err("rates must be non-negative".into());
        }
        if !(0.0 < self.charge_efficiency && self.charge_efficiency <= 1.0) {
            return Err("charge efficiency must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// A battery bank with integrated state of charge.
///
/// # Example
///
/// ```
/// use energy_system::battery::{Battery, BatterySpec};
/// use simkit::time::SimDuration;
/// use simkit::units::Watts;
///
/// let mut bank = Battery::new_full(BatterySpec::paper_prototype());
/// let dt = SimDuration::from_minutes(60);
/// let delivered = bank.discharge(Watts::new(144.0), dt);
/// assert!((delivered.watts() - 144.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    spec: BatterySpec,
    soc: WattHours,
    /// Total energy ever charged into the bank (for cycle counting).
    charged_total: WattHours,
    /// Total energy ever discharged from the bank.
    discharged_total: WattHours,
}

impl Battery {
    /// Creates a bank at full charge.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn new_full(spec: BatterySpec) -> Self {
        Self::new_at(spec, 1.0)
    }

    /// Creates a bank at the given state-of-charge fraction (clamped to
    /// `[min_soc_fraction, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn new_at(spec: BatterySpec, soc_fraction: f64) -> Self {
        spec.validate().expect("invalid battery spec");
        let frac = soc_fraction.clamp(spec.min_soc_fraction, 1.0);
        Self {
            soc: spec.capacity * frac,
            spec,
            charged_total: WattHours::ZERO,
            discharged_total: WattHours::ZERO,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// Current stored energy (absolute, including the unusable floor).
    pub fn charge_level(&self) -> WattHours {
        self.soc
    }

    /// State of charge as a fraction of nameplate capacity in `[0, 1]`.
    pub fn soc_fraction(&self) -> f64 {
        self.soc / self.spec.capacity
    }

    /// Energy available above the empty floor.
    pub fn usable_energy(&self) -> WattHours {
        (self.soc - self.spec.floor_energy()).max_zero()
    }

    /// Energy that can still be stored before the bank is full.
    pub fn headroom(&self) -> WattHours {
        (self.spec.capacity - self.soc).max_zero()
    }

    /// `true` when at (or within rounding of) full capacity.
    pub fn is_full(&self) -> bool {
        self.headroom().watt_hours() < 1e-9
    }

    /// `true` when at (or below) the configured empty floor.
    pub fn is_empty(&self) -> bool {
        self.usable_energy().watt_hours() < 1e-9
    }

    /// Equivalent full cycles so far (discharge throughput / capacity).
    pub fn equivalent_cycles(&self) -> f64 {
        self.discharged_total / self.spec.capacity
    }

    /// Maximum power the bank can accept for the next `dt`, considering
    /// both the charge-rate limit and remaining headroom.
    pub fn max_charge_power(&self, dt: SimDuration) -> Watts {
        if dt.is_zero() {
            return Watts::ZERO;
        }
        let headroom_limited = self.headroom() / self.spec.charge_efficiency / dt;
        self.spec.max_charge_rate.min(headroom_limited)
    }

    /// Maximum power the bank can deliver for the next `dt`, considering
    /// both the discharge-rate limit and usable energy above the floor.
    pub fn max_discharge_power(&self, dt: SimDuration) -> Watts {
        if dt.is_zero() {
            return Watts::ZERO;
        }
        let energy_limited = self.usable_energy() / dt;
        self.spec.max_discharge_rate.min(energy_limited)
    }

    /// Charges at up to `power` for `dt`; returns the power actually
    /// accepted (post rate/headroom limiting, pre-efficiency).
    ///
    /// Negative requests are treated as zero.
    pub fn charge(&mut self, power: Watts, dt: SimDuration) -> Watts {
        let accepted = power.max_zero().min(self.max_charge_power(dt));
        let stored = accepted * dt * self.spec.charge_efficiency;
        self.soc = (self.soc + stored).min(self.spec.capacity);
        self.charged_total += stored;
        accepted
    }

    /// Discharges at up to `power` for `dt`; returns the power actually
    /// delivered (post rate/floor limiting).
    ///
    /// Negative requests are treated as zero.
    pub fn discharge(&mut self, power: Watts, dt: SimDuration) -> Watts {
        let delivered = power.max_zero().min(self.max_discharge_power(dt));
        let drawn = delivered * dt;
        self.soc = (self.soc - drawn).max(self.spec.floor_energy());
        self.discharged_total += drawn;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour() -> SimDuration {
        SimDuration::from_minutes(60)
    }

    #[test]
    fn paper_prototype_constants() {
        let spec = BatterySpec::paper_prototype();
        assert_eq!(spec.capacity, WattHours::new(1440.0));
        assert_eq!(spec.max_charge_rate, Watts::new(360.0)); // 0.25C
        assert_eq!(spec.max_discharge_rate, Watts::new(1440.0)); // 1C
        assert_eq!(spec.floor_energy(), WattHours::new(432.0)); // 30%
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn charge_rate_limited_to_quarter_c() {
        let mut b = Battery::new_at(BatterySpec::paper_prototype(), 0.30);
        // Ask for far more than 0.25C.
        let accepted = b.charge(Watts::new(10_000.0), hour());
        assert_eq!(accepted, Watts::new(360.0));
        assert!((b.charge_level().watt_hours() - (432.0 + 360.0)).abs() < 1e-9);
    }

    #[test]
    fn charges_to_full_in_four_hours_from_empty() {
        // Paper: "the battery charges to full capacity in 4 hours" from
        // empty (30% SoC) at 0.25C — 1008 Wh gap at 360 W = 2.8 h; the
        // paper's 4 h figure is from 0% SoC; verify both interpretations.
        let mut b = Battery::new_at(BatterySpec::paper_prototype(), 0.30);
        for _ in 0..3 {
            b.charge(Watts::new(360.0), hour());
        }
        assert!(b.is_full(), "should be full after 3h from the 30% floor");
        assert!((b.spec().capacity.watt_hours() / 360.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn discharge_stops_at_floor() {
        let mut b = Battery::new_full(BatterySpec::paper_prototype());
        // 1008 Wh usable; draw 600 W for 1 h twice.
        let d1 = b.discharge(Watts::new(600.0), hour());
        assert_eq!(d1, Watts::new(600.0));
        let d2 = b.discharge(Watts::new(600.0), hour());
        assert!((d2.watts() - 408.0).abs() < 1e-9, "only 408 Wh remained");
        assert!(b.is_empty());
        assert_eq!(b.usable_energy(), WattHours::ZERO);
        // Further discharge yields nothing.
        assert_eq!(b.discharge(Watts::new(100.0), hour()), Watts::ZERO);
    }

    #[test]
    fn headroom_limits_charging_near_full() {
        let mut b = Battery::new_at(BatterySpec::paper_prototype(), 0.999);
        let headroom = b.headroom();
        let accepted = b.charge(Watts::new(360.0), hour());
        assert!((accepted * hour()).abs_diff(headroom) < 1e-6);
        assert!(b.is_full());
    }

    #[test]
    fn negative_requests_are_noops() {
        let mut b = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        let before = b.charge_level();
        assert_eq!(b.charge(Watts::new(-5.0), hour()), Watts::ZERO);
        assert_eq!(b.discharge(Watts::new(-5.0), hour()), Watts::ZERO);
        assert_eq!(b.charge_level(), before);
    }

    #[test]
    fn zero_duration_is_noop() {
        let mut b = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        assert_eq!(b.charge(Watts::new(100.0), SimDuration::ZERO), Watts::ZERO);
        assert_eq!(
            b.discharge(Watts::new(100.0), SimDuration::ZERO),
            Watts::ZERO
        );
    }

    #[test]
    fn cycle_counting() {
        let spec = BatterySpec::with_capacity(WattHours::new(100.0));
        let mut b = Battery::new_full(spec);
        // Discharge 70 Wh (to floor), charge back, twice: 140 Wh
        // throughput = 1.4 equivalent cycles.
        for _ in 0..2 {
            b.discharge(Watts::new(70.0), hour());
            b.charge(Watts::new(25.0), SimDuration::from_hours(3));
        }
        assert!((b.equivalent_cycles() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn charge_efficiency_loses_energy() {
        let spec = BatterySpec {
            charge_efficiency: 0.9,
            ..BatterySpec::with_capacity(WattHours::new(100.0))
        };
        let mut b = Battery::new_at(spec, 0.30);
        let accepted = b.charge(Watts::new(10.0), hour());
        assert_eq!(accepted, Watts::new(10.0));
        // 10 Wh drawn, 9 Wh stored.
        assert!((b.charge_level().watt_hours() - 39.0).abs() < 1e-9);
    }

    #[test]
    fn soc_fraction_round_trip() {
        let b = Battery::new_at(BatterySpec::paper_prototype(), 0.65);
        assert!((b.soc_fraction() - 0.65).abs() < 1e-12);
        // Clamps below the floor.
        let low = Battery::new_at(BatterySpec::paper_prototype(), 0.05);
        assert!((low.soc_fraction() - 0.30).abs() < 1e-12);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = BatterySpec::paper_prototype();
        s.min_soc_fraction = 1.5;
        assert!(s.validate().is_err());
        s = BatterySpec::paper_prototype();
        s.charge_efficiency = 0.0;
        assert!(s.validate().is_err());
        s = BatterySpec::paper_prototype();
        s.capacity = WattHours::new(-1.0);
        assert!(s.validate().is_err());
    }
}
