//! The composed physical energy system and its per-tick settlement.
//!
//! [`PhysicalEnergySystem`] wires together the three power sources of the
//! paper's prototype (grid, battery, solar — §2 "Background") behind one
//! settlement routine implementing the paper's supply priority (§3.1):
//!
//! 1. solar first satisfies demand;
//! 2. excess solar charges the battery (grid tops charging up to the
//!    configured rate);
//! 3. remaining excess is net-metered or curtailed;
//! 4. deficits draw from the battery up to the allowed discharge rate;
//! 5. any remainder imports from the grid.
//!
//! The ecovisor applies this same routine per *virtual* energy system; the
//! physical settlement here is used both standalone (single-tenant
//! experiments, property tests) and as the aggregate enforcement layer.

use serde::{Deserialize, Serialize};

use simkit::time::{SimDuration, SimTime};
use simkit::units::{WattHours, Watts};

use crate::battery::Battery;
use crate::charge_controller::{GridChargeController, SolarChargeController};
use crate::grid::GridConnection;
use crate::psu::ProgrammablePsu;
use crate::solar::SolarSource;

/// Power flows settled over one tick. All fields are mean powers over the
/// tick interval; multiply by Δt for energies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhysicalFlows {
    /// Load demand presented to the system.
    pub demand: Watts,
    /// Solar power available this tick.
    pub solar_available: Watts,
    /// Solar power delivered directly to the load.
    pub solar_to_load: Watts,
    /// Solar power charged into the battery.
    pub solar_to_battery: Watts,
    /// Solar power exported via net metering.
    pub solar_exported: Watts,
    /// Solar power curtailed (battery full, no export).
    pub solar_curtailed: Watts,
    /// Battery power delivered to the load.
    pub battery_to_load: Watts,
    /// Grid power delivered to the load.
    pub grid_to_load: Watts,
    /// Grid power charged into the battery.
    pub grid_to_battery: Watts,
}

impl PhysicalFlows {
    /// Total grid import (load + battery charging).
    pub fn grid_import(&self) -> Watts {
        self.grid_to_load + self.grid_to_battery
    }

    /// Verifies energy conservation within floating-point tolerance:
    /// every watt of demand and solar is accounted for.
    pub fn conservation_error(&self) -> f64 {
        let load_err = (self.demand
            - (self.solar_to_load + self.battery_to_load + self.grid_to_load))
            .watts()
            .abs();
        let solar_err = (self.solar_available
            - (self.solar_to_load
                + self.solar_to_battery
                + self.solar_exported
                + self.solar_curtailed))
            .watts()
            .abs();
        load_err.max(solar_err)
    }

    /// `true` when conservation holds within tolerance.
    pub fn is_conserved(&self) -> bool {
        self.conservation_error() < 1e-6
    }
}

/// The composed physical energy system.
pub struct PhysicalEnergySystem {
    solar: Box<dyn SolarSource>,
    battery: Battery,
    grid: GridConnection,
    psu: ProgrammablePsu,
    grid_controller: GridChargeController,
    solar_controller: SolarChargeController,
    /// Maximum aggregate battery discharge allowed by software
    /// (Table 1 `set_battery_max_discharge`); physical 1C still applies.
    max_discharge: Watts,
}

impl std::fmt::Debug for PhysicalEnergySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalEnergySystem")
            .field("battery", &self.battery)
            .field("grid", &self.grid)
            .field("max_discharge", &self.max_discharge)
            .finish_non_exhaustive()
    }
}

impl PhysicalEnergySystem {
    /// Composes a system from its parts. The software discharge limit
    /// starts at the battery's physical maximum.
    pub fn new(solar: Box<dyn SolarSource>, battery: Battery, grid: GridConnection) -> Self {
        let max_discharge = battery.spec().max_discharge_rate;
        Self {
            solar,
            battery,
            grid,
            psu: ProgrammablePsu::new(),
            grid_controller: GridChargeController::new(),
            solar_controller: SolarChargeController::new(),
            max_discharge,
        }
    }

    /// Current solar output.
    pub fn solar_power(&self, at: SimTime) -> Watts {
        self.solar.power_at(at)
    }

    /// Mean solar output over a window.
    pub fn solar_power_over(&self, from: SimTime, to: SimTime) -> Watts {
        self.solar.mean_power_over(from, to)
    }

    /// Battery state (read-only).
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Grid connection state (read-only).
    pub fn grid(&self) -> &GridConnection {
        &self.grid
    }

    /// The metering PSU (read-only).
    pub fn psu(&self) -> &ProgrammablePsu {
        &self.psu
    }

    /// Sets the PSU validation limit.
    pub fn set_psu_limit(&mut self, limit: Option<Watts>) {
        self.psu.set_limit(limit);
    }

    /// Sets the grid-charging rate (privileged ecovisor operation).
    pub fn set_battery_charge_rate(&mut self, rate: Watts) {
        self.grid_controller.set_charge_rate(rate);
    }

    /// Currently configured grid-charging rate.
    pub fn battery_charge_rate(&self) -> Watts {
        self.grid_controller.charge_rate()
    }

    /// Sets the software cap on battery discharge (privileged ecovisor
    /// operation). Clamped to the physical 1C limit.
    pub fn set_battery_max_discharge(&mut self, rate: Watts) {
        self.max_discharge = rate.max_zero().min(self.battery.spec().max_discharge_rate);
    }

    /// Current software cap on battery discharge.
    pub fn battery_max_discharge(&self) -> Watts {
        self.max_discharge
    }

    /// Settles one tick, sampling solar from the attached source over
    /// `[at, at + dt)`.
    pub fn settle(&mut self, at: SimTime, dt: SimDuration, demand: Watts) -> PhysicalFlows {
        let solar = self.solar.mean_power_over(at, at + dt);
        self.settle_with_solar(at, dt, demand, solar)
    }

    /// Settles one tick with an explicitly provided solar availability
    /// (the ecovisor supplies the previous tick's buffered output,
    /// implementing the paper's one-tick solar buffer).
    pub fn settle_with_solar(
        &mut self,
        at: SimTime,
        dt: SimDuration,
        demand: Watts,
        solar_available: Watts,
    ) -> PhysicalFlows {
        let demand = demand.max_zero();
        let solar_available = solar_available.max_zero();

        // 1. Solar satisfies demand first.
        let solar_to_load = solar_available.min(demand);
        let excess_solar = solar_available - solar_to_load;
        let deficit = demand - solar_to_load;

        // 2. Excess solar charges the battery via the solar controller.
        let routing = self.solar_controller.route(&self.battery, excess_solar, dt);
        let solar_to_battery = routing.charged;

        // 3. Remaining excess exports (if permitted) or curtails.
        let exported = self.grid.export(routing.surplus, dt);
        let curtailed = routing.surplus - exported;

        // 4. Deficit draws from the battery up to the software cap.
        let battery_to_load = if deficit > Watts::ZERO {
            self.battery.discharge(deficit.min(self.max_discharge), dt)
        } else {
            Watts::ZERO
        };

        // 5. Grid covers the remainder, plus any charging supplement when
        //    the battery is not discharging this tick.
        let grid_to_battery = if battery_to_load == Watts::ZERO {
            self.grid_controller
                .grid_supplement(&self.battery, solar_to_battery, dt)
        } else {
            Watts::ZERO
        };
        let total_charge = solar_to_battery + grid_to_battery;
        if total_charge > Watts::ZERO {
            let accepted = self.battery.charge(total_charge, dt);
            debug_assert!(
                accepted.abs_diff(total_charge) < 1e-6,
                "controllers pre-limited the charge request"
            );
        }
        let grid_request = (deficit - battery_to_load) + grid_to_battery;
        let grid_supplied = self.grid.import(grid_request, dt);
        let grid_to_load = (grid_supplied - grid_to_battery).max_zero();

        self.psu.record_draw(at, grid_supplied, dt);

        PhysicalFlows {
            demand,
            solar_available,
            solar_to_load,
            solar_to_battery,
            solar_exported: exported,
            solar_curtailed: curtailed,
            battery_to_load,
            grid_to_load,
            grid_to_battery,
        }
    }

    /// Total energy imported from the grid so far.
    pub fn total_grid_energy(&self) -> WattHours {
        self.grid.total_imported()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::BatterySpec;
    use crate::solar::{SolarArrayBuilder, TraceSolarSource, Weather};
    use simkit::trace::Trace;

    fn tick() -> SimDuration {
        SimDuration::from_minutes(1)
    }

    fn constant_solar(watts: f64) -> Box<dyn SolarSource> {
        Box::new(TraceSolarSource::new(Trace::constant(watts)))
    }

    fn system_with(solar_w: f64, soc: f64) -> PhysicalEnergySystem {
        PhysicalEnergySystem::new(
            constant_solar(solar_w),
            Battery::new_at(BatterySpec::paper_prototype(), soc),
            GridConnection::new(),
        )
    }

    #[test]
    fn solar_first_then_battery_then_grid() {
        let mut sys = system_with(30.0, 1.0);
        sys.set_battery_max_discharge(Watts::new(20.0));
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(100.0));
        assert_eq!(f.solar_to_load, Watts::new(30.0));
        assert_eq!(f.battery_to_load, Watts::new(20.0));
        assert_eq!(f.grid_to_load, Watts::new(50.0));
        assert!(f.is_conserved());
    }

    #[test]
    fn excess_solar_charges_battery() {
        let mut sys = system_with(100.0, 0.5);
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(40.0));
        assert_eq!(f.solar_to_load, Watts::new(40.0));
        assert_eq!(f.solar_to_battery, Watts::new(60.0));
        assert_eq!(f.solar_curtailed, Watts::ZERO);
        assert_eq!(f.grid_import(), Watts::ZERO);
        assert!(f.is_conserved());
    }

    #[test]
    fn full_battery_curtails_excess() {
        let mut sys = system_with(100.0, 1.0);
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(40.0));
        assert_eq!(f.solar_to_battery, Watts::ZERO);
        assert_eq!(f.solar_curtailed, Watts::new(60.0));
        assert!(f.is_conserved());
    }

    #[test]
    fn net_metering_exports_instead_of_curtailing() {
        let mut sys = PhysicalEnergySystem::new(
            constant_solar(100.0),
            Battery::new_full(BatterySpec::paper_prototype()),
            GridConnection::new().with_net_metering(),
        );
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(40.0));
        assert_eq!(f.solar_exported, Watts::new(60.0));
        assert_eq!(f.solar_curtailed, Watts::ZERO);
        assert!(f.is_conserved());
    }

    #[test]
    fn grid_supplements_battery_charging() {
        let mut sys = system_with(0.0, 0.5);
        sys.set_battery_charge_rate(Watts::new(200.0));
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::ZERO);
        assert_eq!(f.grid_to_battery, Watts::new(200.0));
        assert_eq!(f.grid_import(), Watts::new(200.0));
        assert!(f.is_conserved());
    }

    #[test]
    fn no_grid_charging_while_discharging() {
        let mut sys = system_with(0.0, 0.8);
        sys.set_battery_charge_rate(Watts::new(100.0));
        sys.set_battery_max_discharge(Watts::new(500.0));
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(300.0));
        assert_eq!(f.battery_to_load, Watts::new(300.0));
        assert_eq!(f.grid_to_battery, Watts::ZERO);
        assert!(f.is_conserved());
    }

    #[test]
    fn discharge_cap_limits_battery_contribution() {
        let mut sys = system_with(0.0, 1.0);
        sys.set_battery_max_discharge(Watts::new(50.0));
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(200.0));
        assert_eq!(f.battery_to_load, Watts::new(50.0));
        assert_eq!(f.grid_to_load, Watts::new(150.0));
    }

    #[test]
    fn empty_battery_forces_grid() {
        let mut sys = system_with(0.0, 0.30);
        let f = sys.settle(SimTime::EPOCH, tick(), Watts::new(100.0));
        assert_eq!(f.battery_to_load, Watts::ZERO);
        assert_eq!(f.grid_to_load, Watts::new(100.0));
    }

    #[test]
    fn psu_meters_grid_draw() {
        let mut sys = system_with(0.0, 1.0);
        sys.set_battery_max_discharge(Watts::ZERO);
        sys.set_psu_limit(Some(Watts::new(150.0)));
        sys.settle(SimTime::EPOCH, tick(), Watts::new(100.0));
        assert!(sys.psu().limit_respected());
        sys.settle(SimTime::from_secs(60), tick(), Watts::new(200.0));
        assert!(!sys.psu().limit_respected());
    }

    #[test]
    fn settle_with_real_solar_trace_conserves() {
        let source = SolarArrayBuilder::new(400.0)
            .days(1)
            .weather(Weather::Mixed)
            .seed(3)
            .build_source();
        let mut sys = PhysicalEnergySystem::new(
            Box::new(source),
            Battery::new_at(BatterySpec::paper_prototype(), 0.6),
            GridConnection::new(),
        );
        let dt = tick();
        let mut at = SimTime::EPOCH;
        for i in 0..(24 * 60) {
            let demand = Watts::new(((i % 37) as f64) * 2.0);
            let f = sys.settle(at, dt, demand);
            assert!(f.is_conserved(), "tick {i}: err {}", f.conservation_error());
            at += dt;
        }
        let soc = sys.battery().soc_fraction();
        assert!((0.30..=1.0).contains(&soc), "soc {soc} out of bounds");
    }

    #[test]
    fn software_discharge_cap_clamps_to_physical() {
        let mut sys = system_with(0.0, 1.0);
        sys.set_battery_max_discharge(Watts::new(10_000.0));
        assert_eq!(sys.battery_max_discharge(), Watts::new(1440.0));
    }
}
