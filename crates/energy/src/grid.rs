//! Grid connection model.
//!
//! The grid supplies (effectively) unlimited power on demand; what matters
//! for carbon efficiency is *how much* is drawn and *when* (intensity
//! varies). The connection meters cumulative import/export energy; carbon
//! attribution happens in the ecovisor using the carbon service.

use serde::{Deserialize, Serialize};

use simkit::time::SimDuration;
use simkit::units::{WattHours, Watts};

/// A metered grid connection with an optional service-capacity limit and
/// optional net-metering (export) support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConnection {
    /// Maximum import power (`None` = unlimited, the common case).
    capacity: Option<Watts>,
    /// Whether exporting (net metering) is permitted. The paper's
    /// prototype "does not net meter solar power" (§4), so this defaults
    /// to `false` and excess solar is curtailed instead.
    net_metering: bool,
    imported: WattHours,
    exported: WattHours,
    peak_import: Watts,
}

impl Default for GridConnection {
    fn default() -> Self {
        Self::new()
    }
}

impl GridConnection {
    /// Creates an unlimited, import-only connection (paper prototype).
    pub fn new() -> Self {
        Self {
            capacity: None,
            net_metering: false,
            imported: WattHours::ZERO,
            exported: WattHours::ZERO,
            peak_import: Watts::ZERO,
        }
    }

    /// Limits import capacity (builder-style).
    pub fn with_capacity(mut self, capacity: Watts) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Enables net metering (builder-style).
    pub fn with_net_metering(mut self) -> Self {
        self.net_metering = true;
        self
    }

    /// Whether exports are permitted.
    pub fn net_metering_enabled(&self) -> bool {
        self.net_metering
    }

    /// Import capacity limit, if any.
    pub fn capacity(&self) -> Option<Watts> {
        self.capacity
    }

    /// Draws up to `power` for `dt`; returns the power actually supplied
    /// (limited by capacity). Negative requests are treated as zero.
    pub fn import(&mut self, power: Watts, dt: SimDuration) -> Watts {
        let requested = power.max_zero();
        let supplied = match self.capacity {
            Some(cap) => requested.min(cap),
            None => requested,
        };
        self.imported += supplied * dt;
        self.peak_import = self.peak_import.max(supplied);
        supplied
    }

    /// Exports `power` for `dt` if net metering is enabled; returns the
    /// power actually accepted by the grid (zero when disabled).
    pub fn export(&mut self, power: Watts, dt: SimDuration) -> Watts {
        if !self.net_metering {
            return Watts::ZERO;
        }
        let accepted = power.max_zero();
        self.exported += accepted * dt;
        accepted
    }

    /// Cumulative imported energy.
    pub fn total_imported(&self) -> WattHours {
        self.imported
    }

    /// Cumulative exported energy.
    pub fn total_exported(&self) -> WattHours {
        self.exported
    }

    /// Highest instantaneous import power observed.
    pub fn peak_import(&self) -> Watts {
        self.peak_import
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour() -> SimDuration {
        SimDuration::from_hours(1)
    }

    #[test]
    fn unlimited_import_metered() {
        let mut g = GridConnection::new();
        assert_eq!(g.import(Watts::new(500.0), hour()), Watts::new(500.0));
        assert_eq!(g.total_imported(), WattHours::new(500.0));
        assert_eq!(g.peak_import(), Watts::new(500.0));
    }

    #[test]
    fn capacity_limits_import() {
        let mut g = GridConnection::new().with_capacity(Watts::new(100.0));
        assert_eq!(g.import(Watts::new(500.0), hour()), Watts::new(100.0));
        assert_eq!(g.total_imported(), WattHours::new(100.0));
    }

    #[test]
    fn export_requires_net_metering() {
        let mut g = GridConnection::new();
        assert_eq!(g.export(Watts::new(50.0), hour()), Watts::ZERO);
        assert_eq!(g.total_exported(), WattHours::ZERO);

        let mut nm = GridConnection::new().with_net_metering();
        assert_eq!(nm.export(Watts::new(50.0), hour()), Watts::new(50.0));
        assert_eq!(nm.total_exported(), WattHours::new(50.0));
    }

    #[test]
    fn negative_requests_ignored() {
        let mut g = GridConnection::new().with_net_metering();
        assert_eq!(g.import(Watts::new(-10.0), hour()), Watts::ZERO);
        assert_eq!(g.export(Watts::new(-10.0), hour()), Watts::ZERO);
        assert_eq!(g.total_imported(), WattHours::ZERO);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut g = GridConnection::new();
        g.import(Watts::new(10.0), hour());
        g.import(Watts::new(80.0), hour());
        g.import(Watts::new(30.0), hour());
        assert_eq!(g.peak_import(), Watts::new(80.0));
    }
}
