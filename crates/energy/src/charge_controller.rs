//! Smart charge controllers.
//!
//! The prototype battery "connects to two smart charge controllers, which
//! expose software APIs: one connected to the grid and the other to solar"
//! (§4). The grid-connected controller accepts a software-settable
//! charging rate; the solar-connected controller automatically routes any
//! excess solar into the battery and curtails once full. The ecovisor has
//! privileged access to both to set *aggregate* limits when multiplexing
//! virtual batteries (§3.3).

use serde::{Deserialize, Serialize};

use simkit::time::SimDuration;
use simkit::units::Watts;

use crate::battery::Battery;

/// Grid-connected charge controller with a software-settable charge rate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GridChargeController {
    charge_rate: Watts,
}

impl GridChargeController {
    /// Creates a controller with charging disabled (rate 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the grid-charging rate; the controller charges the battery at
    /// this rate "until full" (Table 1 `set_battery_charge_rate`).
    /// Negative rates clamp to zero.
    pub fn set_charge_rate(&mut self, rate: Watts) {
        self.charge_rate = rate.max_zero();
    }

    /// Currently configured charge rate.
    pub fn charge_rate(&self) -> Watts {
        self.charge_rate
    }

    /// Computes the grid power needed to top the battery's charging up to
    /// the configured rate, given that `already_charging` watts are
    /// arriving from solar. Does not mutate the battery.
    pub fn grid_supplement(
        &self,
        battery: &Battery,
        already_charging: Watts,
        dt: SimDuration,
    ) -> Watts {
        let allow = (battery.max_charge_power(dt) - already_charging).max_zero();
        (self.charge_rate - already_charging).max_zero().min(allow)
    }
}

/// Result of routing excess solar through the solar charge controller.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SolarRouting {
    /// Power accepted into the battery.
    pub charged: Watts,
    /// Power that could not be stored (battery full or rate-limited).
    pub surplus: Watts,
}

/// Solar-connected charge controller: automatically charges from excess
/// solar, reporting any surplus for curtailment/export decisions upstream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SolarChargeController;

impl SolarChargeController {
    /// Creates the controller.
    pub fn new() -> Self {
        Self
    }

    /// Splits `excess_solar` into a battery-charge component and a
    /// surplus component, without mutating the battery.
    pub fn route(&self, battery: &Battery, excess_solar: Watts, dt: SimDuration) -> SolarRouting {
        let excess = excess_solar.max_zero();
        let charged = excess.min(battery.max_charge_power(dt));
        SolarRouting {
            charged,
            surplus: excess - charged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::BatterySpec;

    fn hour() -> SimDuration {
        SimDuration::from_hours(1)
    }

    #[test]
    fn grid_controller_supplements_solar() {
        let battery = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        let mut ctl = GridChargeController::new();
        ctl.set_charge_rate(Watts::new(300.0));
        // 100 W of solar charging already, want 300 total -> 200 from grid.
        let sup = ctl.grid_supplement(&battery, Watts::new(100.0), hour());
        assert_eq!(sup, Watts::new(200.0));
    }

    #[test]
    fn grid_supplement_respects_battery_limit() {
        let battery = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        let mut ctl = GridChargeController::new();
        ctl.set_charge_rate(Watts::new(10_000.0));
        // Battery limit is 360 W (0.25C); 100 W already charging.
        let sup = ctl.grid_supplement(&battery, Watts::new(100.0), hour());
        assert_eq!(sup, Watts::new(260.0));
    }

    #[test]
    fn grid_supplement_zero_when_solar_covers_rate() {
        let battery = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        let mut ctl = GridChargeController::new();
        ctl.set_charge_rate(Watts::new(50.0));
        let sup = ctl.grid_supplement(&battery, Watts::new(80.0), hour());
        assert_eq!(sup, Watts::ZERO);
    }

    #[test]
    fn negative_rate_clamps() {
        let mut ctl = GridChargeController::new();
        ctl.set_charge_rate(Watts::new(-5.0));
        assert_eq!(ctl.charge_rate(), Watts::ZERO);
    }

    #[test]
    fn solar_controller_routes_within_limit() {
        let battery = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        let ctl = SolarChargeController::new();
        let r = ctl.route(&battery, Watts::new(200.0), hour());
        assert_eq!(r.charged, Watts::new(200.0));
        assert_eq!(r.surplus, Watts::ZERO);
    }

    #[test]
    fn solar_controller_reports_surplus_when_rate_limited() {
        let battery = Battery::new_at(BatterySpec::paper_prototype(), 0.5);
        let ctl = SolarChargeController::new();
        let r = ctl.route(&battery, Watts::new(500.0), hour());
        assert_eq!(r.charged, Watts::new(360.0));
        assert_eq!(r.surplus, Watts::new(140.0));
    }

    #[test]
    fn solar_controller_curtails_when_full() {
        let battery = Battery::new_full(BatterySpec::paper_prototype());
        let ctl = SolarChargeController::new();
        let r = ctl.route(&battery, Watts::new(100.0), hour());
        assert_eq!(r.charged, Watts::ZERO);
        assert_eq!(r.surplus, Watts::new(100.0));
    }
}
