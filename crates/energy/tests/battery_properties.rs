//! Randomized property tests of the battery model: SoC bounds, rate
//! limits, and energy bookkeeping under arbitrary operation sequences.
//!
//! Cases are generated from a fixed-seed [`SimRng`] stream (the offline
//! replacement for proptest), so failures are exactly reproducible.

use energy_system::battery::{Battery, BatterySpec};
use simkit::rng::SimRng;
use simkit::time::SimDuration;
use simkit::units::{WattHours, Watts};

#[derive(Debug, Clone, Copy)]
enum Op {
    Charge(f64),
    Discharge(f64),
}

fn arb_op(rng: &mut SimRng) -> Op {
    if rng.chance(0.5) {
        Op::Charge(rng.uniform(0.0, 2000.0))
    } else {
        Op::Discharge(rng.uniform(0.0, 3000.0))
    }
}

fn arb_ops(rng: &mut SimRng, max: u64) -> Vec<Op> {
    let len = rng.uniform_u64(1, max);
    (0..len).map(|_| arb_op(rng)).collect()
}

/// The state of charge never leaves [floor, capacity], no matter the
/// operation sequence.
#[test]
fn soc_always_in_bounds() {
    let mut rng = SimRng::from_seed(2002).fork("soc_always_in_bounds");
    for _ in 0..256 {
        let capacity = rng.uniform(10.0, 2000.0);
        let initial = rng.unit();
        let ops = arb_ops(&mut rng, 60);
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_at(spec, initial);
        let dt = SimDuration::from_minutes(1);
        for op in ops {
            match op {
                Op::Charge(w) => {
                    b.charge(Watts::new(w), dt);
                }
                Op::Discharge(w) => {
                    b.discharge(Watts::new(w), dt);
                }
            }
            let level = b.charge_level().watt_hours();
            assert!(level <= capacity + 1e-9, "level {level} > capacity");
            assert!(
                level >= spec.floor_energy().watt_hours() - 1e-9,
                "level {level} below floor"
            );
        }
    }
}

/// Accepted charge and delivered discharge never exceed the C-rate
/// limits (0.25C / 1C).
#[test]
fn rates_never_exceeded() {
    let mut rng = SimRng::from_seed(2002).fork("rates_never_exceeded");
    for _ in 0..256 {
        let capacity = rng.uniform(10.0, 2000.0);
        let initial = rng.unit();
        let request = rng.uniform(0.0, 10_000.0);
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_at(spec, initial);
        let dt = SimDuration::from_minutes(1);
        let accepted = b.charge(Watts::new(request), dt);
        assert!(accepted.watts() <= spec.max_charge_rate.watts() + 1e-9);
        let delivered = b.discharge(Watts::new(request), dt);
        assert!(delivered.watts() <= spec.max_discharge_rate.watts() + 1e-9);
    }
}

/// Energy bookkeeping is exact (efficiency 1.0): final level equals
/// initial level plus accepted charge minus delivered discharge.
#[test]
fn energy_bookkeeping_is_exact() {
    let mut rng = SimRng::from_seed(2002).fork("energy_bookkeeping_is_exact");
    for _ in 0..256 {
        let capacity = rng.uniform(10.0, 2000.0);
        let initial = rng.uniform(0.3, 1.0);
        let ops = arb_ops(&mut rng, 40);
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_at(spec, initial);
        let start = b.charge_level();
        let dt = SimDuration::from_minutes(1);
        let mut net = WattHours::ZERO;
        for op in ops {
            match op {
                Op::Charge(w) => net += b.charge(Watts::new(w), dt) * dt,
                Op::Discharge(w) => net -= b.discharge(Watts::new(w), dt) * dt,
            }
        }
        let expected = start + net;
        assert!(
            b.charge_level().abs_diff(expected) < 1e-6,
            "level {} vs expected {expected}",
            b.charge_level()
        );
    }
}

/// Cycle counting is monotone and proportional to discharge volume.
#[test]
fn cycles_monotone() {
    let mut rng = SimRng::from_seed(2002).fork("cycles_monotone");
    for _ in 0..256 {
        let capacity = rng.uniform(50.0, 500.0);
        let rounds = rng.uniform_u64(1, 10) as usize;
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_full(spec);
        let dt = SimDuration::from_hours(1);
        let mut last = 0.0;
        for _ in 0..rounds {
            b.discharge(spec.max_discharge_rate, dt);
            let c = b.equivalent_cycles();
            assert!(c >= last);
            last = c;
            b.charge(spec.max_charge_rate, dt);
        }
    }
}
