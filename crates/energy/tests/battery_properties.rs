//! Property-based tests of the battery model: SoC bounds, rate limits,
//! and energy bookkeeping under arbitrary operation sequences.

use proptest::prelude::*;

use energy_system::battery::{Battery, BatterySpec};
use simkit::time::SimDuration;
use simkit::units::{WattHours, Watts};

#[derive(Debug, Clone, Copy)]
enum Op {
    Charge(f64),
    Discharge(f64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0_f64..2000.0).prop_map(Op::Charge),
        (0.0_f64..3000.0).prop_map(Op::Discharge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The state of charge never leaves [floor, capacity], no matter the
    /// operation sequence.
    #[test]
    fn soc_always_in_bounds(
        capacity in 10.0_f64..2000.0,
        initial in 0.0_f64..=1.0,
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_at(spec, initial);
        let dt = SimDuration::from_minutes(1);
        for op in ops {
            match op {
                Op::Charge(w) => { b.charge(Watts::new(w), dt); }
                Op::Discharge(w) => { b.discharge(Watts::new(w), dt); }
            }
            let level = b.charge_level().watt_hours();
            prop_assert!(level <= capacity + 1e-9, "level {level} > capacity");
            prop_assert!(
                level >= spec.floor_energy().watt_hours() - 1e-9,
                "level {level} below floor"
            );
        }
    }

    /// Accepted charge and delivered discharge never exceed the C-rate
    /// limits (0.25C / 1C).
    #[test]
    fn rates_never_exceeded(
        capacity in 10.0_f64..2000.0,
        initial in 0.0_f64..=1.0,
        request in 0.0_f64..10_000.0,
    ) {
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_at(spec, initial);
        let dt = SimDuration::from_minutes(1);
        let accepted = b.charge(Watts::new(request), dt);
        prop_assert!(accepted.watts() <= spec.max_charge_rate.watts() + 1e-9);
        let delivered = b.discharge(Watts::new(request), dt);
        prop_assert!(delivered.watts() <= spec.max_discharge_rate.watts() + 1e-9);
    }

    /// Energy bookkeeping is exact (efficiency 1.0): final level equals
    /// initial level plus accepted charge minus delivered discharge.
    #[test]
    fn energy_bookkeeping_is_exact(
        capacity in 10.0_f64..2000.0,
        initial in 0.3_f64..=1.0,
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_at(spec, initial);
        let start = b.charge_level();
        let dt = SimDuration::from_minutes(1);
        let mut net = WattHours::ZERO;
        for op in ops {
            match op {
                Op::Charge(w) => net += b.charge(Watts::new(w), dt) * dt,
                Op::Discharge(w) => net -= b.discharge(Watts::new(w), dt) * dt,
            }
        }
        let expected = start + net;
        prop_assert!(
            b.charge_level().abs_diff(expected) < 1e-6,
            "level {} vs expected {expected}",
            b.charge_level()
        );
    }

    /// Cycle counting is monotone and proportional to discharge volume.
    #[test]
    fn cycles_monotone(
        capacity in 50.0_f64..500.0,
        rounds in 1usize..10,
    ) {
        let spec = BatterySpec::with_capacity(WattHours::new(capacity));
        let mut b = Battery::new_full(spec);
        let dt = SimDuration::from_hours(1);
        let mut last = 0.0;
        for _ in 0..rounds {
            b.discharge(spec.max_discharge_rate, dt);
            let c = b.equivalent_cycles();
            prop_assert!(c >= last);
            last = c;
            b.charge(spec.max_charge_rate, dt);
        }
    }
}
