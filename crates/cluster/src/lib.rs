//! # container-cop — container orchestration platform substrate
//!
//! A software stand-in for LXD, the container orchestration platform (COP)
//! the ecovisor prototype extends (paper §3–4). It provides exactly the
//! COP features the paper relies on:
//!
//! * **Containers as the unit of allocation** — each with a core count and
//!   memory reservation, owned by an application ([`AppId`]).
//! * **Horizontal scaling** — launching/stopping containers, plus
//!   suspend/resume (the basis of WaitAWhile-style policies).
//! * **Vertical scaling via cgroup-style CPU quotas** — the mechanism by
//!   which power caps are enforced: "our prototype ... caps container
//!   power by limiting the utilization per core" (§2, following
//!   Thunderbolt).
//! * **Placement scheduling** — LXD's default policy: "allocates a
//!   container to the server with the fewest container instances" (§4).
//! * **A utilization→power model** for the paper's ARM microservers
//!   (quad-core, 1.35 W idle, 5 W at 100 % CPU, 10 W with GPU — §4),
//!   giving per-container power attribution and cap-to-quota conversion.
//!
//! # Example
//!
//! ```
//! use container_cop::{AppId, ContainerSpec, Cop, CopConfig};
//! use simkit::units::Watts;
//!
//! let mut cop = Cop::new(CopConfig::microserver_cluster(4));
//! let app = AppId::new(1);
//! let c = cop.launch(app, ContainerSpec::quad_core()).unwrap();
//! cop.set_demand(c, 1.0);
//! let power = cop.container_power(c).unwrap();
//! assert!(power > Watts::new(3.0)); // ~3.65 W dynamic at full utilization
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod cop;
pub mod error;
pub mod power;
pub mod scheduler;
pub mod server;

pub use container::{AppId, Container, ContainerId, ContainerSpec, ContainerState};
pub use cop::{Cop, CopConfig, CopSnapshot};
pub use error::CopError;
pub use power::PowerModel;
pub use scheduler::{FewestContainers, Placement};
pub use server::{Server, ServerId, ServerSpec};
