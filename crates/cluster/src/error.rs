//! COP error types.

use std::error::Error;
use std::fmt;

use crate::container::ContainerId;

/// Errors returned by COP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopError {
    /// No server has enough free cores/memory for the requested container.
    InsufficientCapacity {
        /// Cores requested.
        cores: u32,
        /// Memory requested in MiB.
        memory_mib: u64,
    },
    /// The referenced container does not exist (or was destroyed).
    UnknownContainer(ContainerId),
    /// The operation is invalid in the container's current state.
    InvalidState {
        /// Container the operation targeted.
        container: ContainerId,
        /// Description of the conflict (owned so the error can cross a
        /// serialization boundary intact).
        reason: String,
    },
}

impl fmt::Display for CopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopError::InsufficientCapacity { cores, memory_mib } => write!(
                f,
                "no server can host a container with {cores} cores and {memory_mib} MiB"
            ),
            CopError::UnknownContainer(id) => write!(f, "unknown container {id}"),
            CopError::InvalidState { container, reason } => {
                write!(f, "invalid operation on container {container}: {reason}")
            }
        }
    }
}

impl Error for CopError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CopError::InsufficientCapacity {
            cores: 4,
            memory_mib: 4096,
        };
        assert!(e.to_string().contains("4 cores"));
        let u = CopError::UnknownContainer(ContainerId::new(7));
        assert!(u.to_string().contains("unknown container"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(CopError::UnknownContainer(ContainerId::new(1)));
        assert!(!e.to_string().is_empty());
    }
}
