//! Physical servers hosting containers.
//!
//! Models the paper's prototype hardware (§4): ARM microservers with a
//! quad-core Cortex A53 and 4 GiB of memory, drawing 1.35 W at idle, 5 W
//! at 100 % CPU, and 10 W with the Jetson Nano GPU also saturated. A
//! conventional-server spec (the Dell PowerEdge R430 cluster the paper
//! used for larger simulated runs) is provided as well.

use std::fmt;

use serde::{Deserialize, Serialize};

use simkit::units::Watts;

/// Identifies a server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id from a raw integer.
    pub const fn new(id: u32) -> Self {
        Self(id)
    }

    /// Raw integer value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// Static description of one server model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// CPU cores.
    pub cores: u32,
    /// Memory in MiB.
    pub memory_mib: u64,
    /// Power drawn with zero utilization.
    pub idle_power: Watts,
    /// Power drawn at 100 % CPU utilization (all cores busy, no GPU).
    pub max_cpu_power: Watts,
    /// Power drawn at 100 % CPU + GPU utilization, when a GPU is present.
    pub max_gpu_power: Option<Watts>,
}

impl ServerSpec {
    /// The paper's ARM microserver: 4 cores, 4 GiB, 1.35/5 W, optional
    /// Jetson Nano GPU reaching 10 W.
    pub fn microserver() -> Self {
        Self {
            cores: 4,
            memory_mib: 4096,
            idle_power: Watts::new(1.35),
            max_cpu_power: Watts::new(5.0),
            max_gpu_power: None,
        }
    }

    /// A microserver with the Jetson Nano GPU attached.
    pub fn microserver_with_gpu() -> Self {
        Self {
            max_gpu_power: Some(Watts::new(10.0)),
            ..Self::microserver()
        }
    }

    /// The paper's conventional node: Dell PowerEdge R430, 16 cores,
    /// 64 GiB. Idle/peak power modeled at 60/200 W (typical for the SKU).
    pub fn poweredge_r430() -> Self {
        Self {
            cores: 16,
            memory_mib: 64 * 1024,
            idle_power: Watts::new(60.0),
            max_cpu_power: Watts::new(200.0),
            max_gpu_power: None,
        }
    }

    /// `true` when a GPU is attached.
    pub fn has_gpu(&self) -> bool {
        self.max_gpu_power.is_some()
    }

    /// Dynamic power span of the CPU (max − idle).
    pub fn cpu_dynamic_power(&self) -> Watts {
        self.max_cpu_power - self.idle_power
    }

    /// Dynamic power of one core at 100 % utilization.
    pub fn per_core_dynamic_power(&self) -> Watts {
        self.cpu_dynamic_power() / f64::from(self.cores.max(1))
    }

    /// Extra dynamic power of the GPU at full utilization (0 without one).
    pub fn gpu_dynamic_power(&self) -> Watts {
        match self.max_gpu_power {
            Some(max) => max - self.max_cpu_power,
            None => Watts::ZERO,
        }
    }

    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("server must have at least one core".into());
        }
        if self.idle_power.watts() < 0.0 {
            return Err("idle power must be non-negative".into());
        }
        if self.max_cpu_power < self.idle_power {
            return Err("max CPU power must be at least idle power".into());
        }
        if let Some(g) = self.max_gpu_power {
            if g < self.max_cpu_power {
                return Err("max GPU power must be at least max CPU power".into());
            }
        }
        Ok(())
    }
}

/// Runtime placement bookkeeping for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    id: ServerId,
    spec: ServerSpec,
    cores_used: u32,
    memory_used_mib: u64,
    container_count: usize,
}

impl Server {
    /// Creates an empty server.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn new(id: ServerId, spec: ServerSpec) -> Self {
        spec.validate().expect("invalid server spec");
        Self {
            id,
            spec,
            cores_used: 0,
            memory_used_mib: 0,
            container_count: 0,
        }
    }

    /// Server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Static spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Number of containers currently placed here.
    pub fn container_count(&self) -> usize {
        self.container_count
    }

    /// Cores not yet reserved.
    pub fn free_cores(&self) -> u32 {
        self.spec.cores - self.cores_used
    }

    /// Memory not yet reserved, in MiB.
    pub fn free_memory_mib(&self) -> u64 {
        self.spec.memory_mib - self.memory_used_mib
    }

    /// `true` when a container with the given requirements fits.
    pub fn fits(&self, cores: u32, memory_mib: u64, needs_gpu: bool) -> bool {
        self.free_cores() >= cores
            && self.free_memory_mib() >= memory_mib
            && (!needs_gpu || self.spec.has_gpu())
    }

    /// Reserves resources for a placed container.
    ///
    /// # Panics
    ///
    /// Panics if the container does not fit (callers must check
    /// [`fits`](Self::fits) first).
    pub fn reserve(&mut self, cores: u32, memory_mib: u64) {
        assert!(
            self.free_cores() >= cores && self.free_memory_mib() >= memory_mib,
            "reserve called without capacity"
        );
        self.cores_used += cores;
        self.memory_used_mib += memory_mib;
        self.container_count += 1;
    }

    /// Releases resources of a removed container.
    pub fn release(&mut self, cores: u32, memory_mib: u64) {
        self.cores_used = self.cores_used.saturating_sub(cores);
        self.memory_used_mib = self.memory_used_mib.saturating_sub(memory_mib);
        self.container_count = self.container_count.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microserver_constants_match_paper() {
        let s = ServerSpec::microserver();
        assert_eq!(s.cores, 4);
        assert_eq!(s.idle_power, Watts::new(1.35));
        assert_eq!(s.max_cpu_power, Watts::new(5.0));
        assert!(s.validate().is_ok());
        let g = ServerSpec::microserver_with_gpu();
        assert_eq!(g.max_gpu_power, Some(Watts::new(10.0)));
        assert_eq!(g.gpu_dynamic_power(), Watts::new(5.0));
    }

    #[test]
    fn per_core_dynamic_power() {
        let s = ServerSpec::microserver();
        assert!((s.per_core_dynamic_power().watts() - (5.0 - 1.35) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn reserve_and_release() {
        let mut s = Server::new(ServerId::new(0), ServerSpec::microserver());
        assert!(s.fits(4, 4096, false));
        s.reserve(2, 1024);
        assert_eq!(s.free_cores(), 2);
        assert_eq!(s.container_count(), 1);
        assert!(!s.fits(4, 1, false));
        s.release(2, 1024);
        assert_eq!(s.free_cores(), 4);
        assert_eq!(s.container_count(), 0);
    }

    #[test]
    fn gpu_requirement_respected() {
        let s = Server::new(ServerId::new(0), ServerSpec::microserver());
        assert!(!s.fits(1, 256, true));
        let g = Server::new(ServerId::new(1), ServerSpec::microserver_with_gpu());
        assert!(g.fits(1, 256, true));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn reserve_without_capacity_panics() {
        let mut s = Server::new(ServerId::new(0), ServerSpec::microserver());
        s.reserve(5, 1);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = ServerSpec::microserver();
        s.cores = 0;
        assert!(s.validate().is_err());
        let mut s2 = ServerSpec::microserver();
        s2.max_cpu_power = Watts::new(1.0);
        assert!(s2.validate().is_err());
        let mut s3 = ServerSpec::microserver_with_gpu();
        s3.max_gpu_power = Some(Watts::new(2.0));
        assert!(s3.validate().is_err());
    }
}
