//! Containers: the unit of resource allocation and energy management.

use std::fmt;

use serde::{Deserialize, Serialize};

use simkit::units::Watts;

use crate::server::ServerId;

/// Identifies an application (tenant) owning containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(u32);

impl AppId {
    /// Creates an application id from a raw integer.
    pub const fn new(id: u32) -> Self {
        Self(id)
    }

    /// Raw integer value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Identifies a container instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(u64);

impl ContainerId {
    /// Creates a container id from a raw integer.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// Raw integer value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Requested resources for a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// CPU cores allocated.
    pub cores: u32,
    /// Memory reservation in MiB.
    pub memory_mib: u64,
    /// Whether the container uses the host's GPU (Jetson Nano in the
    /// prototype; doubles max power draw).
    pub gpu: bool,
}

impl ContainerSpec {
    /// A container filling one whole microserver (4 cores, 4 GiB).
    pub fn quad_core() -> Self {
        Self {
            cores: 4,
            memory_mib: 4096,
            gpu: false,
        }
    }

    /// A single-core container with 1 GiB.
    pub fn single_core() -> Self {
        Self {
            cores: 1,
            memory_mib: 1024,
            gpu: false,
        }
    }

    /// Builder-style: request `cores` cores (1 GiB per core).
    pub fn with_cores(cores: u32) -> Self {
        Self {
            cores,
            memory_mib: 1024 * u64::from(cores),
            gpu: false,
        }
    }

    /// Builder-style: attach the GPU.
    pub fn with_gpu(mut self) -> Self {
        self.gpu = true;
        self
    }
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ContainerState {
    /// Scheduled and executing; consumes idle + dynamic power.
    #[default]
    Running,
    /// Frozen (cgroup freezer): retains placement and memory but runs no
    /// cycles and draws no attributed power in our model. Basis of
    /// suspend-resume policies.
    Suspended,
    /// Destroyed; retained only for accounting history.
    Stopped,
}

/// A container instance with its cgroup-style runtime controls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    id: ContainerId,
    owner: AppId,
    spec: ContainerSpec,
    server: ServerId,
    state: ContainerState,
    /// cgroup cpu-quota analogue: fraction of the *allocated cores* the
    /// container may use, in `[0, 1]`.
    cpu_quota: f64,
    /// Workload CPU demand as a fraction of allocated cores, in `[0, 1]`.
    demand: f64,
    /// Application-set power cap, if any (Table 1
    /// `get_container_powercap` reports exactly what the app set).
    power_cap: Option<Watts>,
    /// Ecovisor-installed cap component (carbon-rate enforcement). Kept
    /// separate from `power_cap` so enforcement never clobbers the
    /// app's own setting; the quota enforces `min` of the two.
    carbon_cap: Option<Watts>,
}

impl Container {
    /// Creates a running container (used by the COP).
    pub(crate) fn new(
        id: ContainerId,
        owner: AppId,
        spec: ContainerSpec,
        server: ServerId,
    ) -> Self {
        Self {
            id,
            owner,
            spec,
            server,
            state: ContainerState::Running,
            cpu_quota: 1.0,
            demand: 0.0,
            power_cap: None,
            carbon_cap: None,
        }
    }

    /// Container id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Owning application.
    pub fn owner(&self) -> AppId {
        self.owner
    }

    /// Resource spec.
    pub fn spec(&self) -> ContainerSpec {
        self.spec
    }

    /// Hosting server.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: ContainerState) {
        self.state = state;
    }

    /// Current CPU quota in `[0, 1]` (fraction of allocated cores).
    pub fn cpu_quota(&self) -> f64 {
        self.cpu_quota
    }

    pub(crate) fn set_cpu_quota(&mut self, quota: f64) {
        self.cpu_quota = quota.clamp(0.0, 1.0);
    }

    /// Current workload demand in `[0, 1]`.
    pub fn demand(&self) -> f64 {
        self.demand
    }

    pub(crate) fn set_demand(&mut self, demand: f64) {
        self.demand = demand.clamp(0.0, 1.0);
    }

    /// The application-set power cap, if one is set.
    pub fn power_cap(&self) -> Option<Watts> {
        self.power_cap
    }

    pub(crate) fn set_power_cap(&mut self, cap: Option<Watts>) {
        self.power_cap = cap;
    }

    /// The ecovisor-installed carbon-enforcement cap, if one is active.
    pub fn carbon_cap(&self) -> Option<Watts> {
        self.carbon_cap
    }

    pub(crate) fn set_carbon_cap(&mut self, cap: Option<Watts>) {
        self.carbon_cap = cap;
    }

    /// The cap the quota actually enforces: `min` of the app-set cap and
    /// the ecovisor's carbon cap, `None` when neither is active.
    pub fn effective_power_cap(&self) -> Option<Watts> {
        match (self.power_cap, self.carbon_cap) {
            (Some(user), Some(carbon)) => Some(user.min(carbon)),
            (one, other) => one.or(other),
        }
    }

    /// Effective utilization this tick: demand clipped by quota, zero
    /// unless running.
    pub fn effective_utilization(&self) -> f64 {
        match self.state {
            ContainerState::Running => self.demand.min(self.cpu_quota),
            _ => 0.0,
        }
    }

    /// Effective compute capacity in core-equivalents
    /// (`cores × effective_utilization`) — what workload models consume.
    pub fn effective_cores(&self) -> f64 {
        f64::from(self.spec.cores) * self.effective_utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container() -> Container {
        Container::new(
            ContainerId::new(1),
            AppId::new(9),
            ContainerSpec::quad_core(),
            ServerId::new(0),
        )
    }

    #[test]
    fn ids_display() {
        assert_eq!(AppId::new(3).to_string(), "app3");
        assert_eq!(ContainerId::new(12).to_string(), "c12");
    }

    #[test]
    fn effective_utilization_clips_demand_by_quota() {
        let mut c = container();
        c.set_demand(0.9);
        c.set_cpu_quota(0.5);
        assert_eq!(c.effective_utilization(), 0.5);
        assert_eq!(c.effective_cores(), 2.0);
        c.set_cpu_quota(1.0);
        assert_eq!(c.effective_utilization(), 0.9);
    }

    #[test]
    fn suspended_containers_have_no_utilization() {
        let mut c = container();
        c.set_demand(1.0);
        c.set_state(ContainerState::Suspended);
        assert_eq!(c.effective_utilization(), 0.0);
        c.set_state(ContainerState::Running);
        assert_eq!(c.effective_utilization(), 1.0);
    }

    #[test]
    fn quota_and_demand_clamped() {
        let mut c = container();
        c.set_cpu_quota(7.0);
        assert_eq!(c.cpu_quota(), 1.0);
        c.set_cpu_quota(-1.0);
        assert_eq!(c.cpu_quota(), 0.0);
        c.set_demand(2.0);
        assert_eq!(c.demand(), 1.0);
    }

    #[test]
    fn spec_builders() {
        let s = ContainerSpec::with_cores(3);
        assert_eq!(s.cores, 3);
        assert_eq!(s.memory_mib, 3072);
        assert!(!s.gpu);
        assert!(ContainerSpec::quad_core().with_gpu().gpu);
    }
}
