//! The utilization→power model and cap→quota conversion.
//!
//! Following the paper's monitoring stack (PowerAPI software-defined
//! power meters, §4), **container power is the dynamic, utilization-
//! proportional share only**:
//!
//! ```text
//! P(container) = per_core_dynamic × cores × utilization
//!              (+ gpu_dynamic × utilization, when the GPU is attached)
//! ```
//!
//! The host's idle power is *not* attributed to containers — it is the
//! system baseline ("the system-wide power also shows a small amount
//! baseline power required to run the ecovisor", Fig. 5d) and appears
//! only in [`crate::cop::Cop::total_power`]. Power caps are enforced by
//! "limiting the utilization per core" via cgroup-style quotas (§2,
//! following Thunderbolt): a cap constrains the container's dynamic
//! power, so any positive cap yields some progress — which is what makes
//! the paper's low-solar vertical-scaling experiments (§5.4) feasible.
//!
//! Servers are not energy-proportional (§5.4): the un-attributed idle
//! floor is exactly why operating nodes near 100 % utilization is the
//! most energy-efficient point.

use serde::{Deserialize, Serialize};

use simkit::units::Watts;

use crate::container::{Container, ContainerState};
use crate::server::ServerSpec;

/// Power model for a server type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    spec: ServerSpec,
}

impl PowerModel {
    /// Builds a model from a server spec.
    pub fn new(spec: ServerSpec) -> Self {
        Self { spec }
    }

    /// The underlying server spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Host idle power apportioned to `cores` cores (used for cluster
    /// baseline accounting, not for container attribution).
    pub fn idle_share(&self, cores: u32) -> Watts {
        self.spec.idle_power * (f64::from(cores) / f64::from(self.spec.cores))
    }

    /// Dynamic power attributed to a container at the given utilization
    /// (fraction of its allocated cores, `[0, 1]`), including optional
    /// GPU dynamic power.
    pub fn container_power(&self, cores: u32, utilization: f64, gpu: bool) -> Watts {
        let u = utilization.clamp(0.0, 1.0);
        let dynamic = self.spec.per_core_dynamic_power() * f64::from(cores) * u;
        let gpu_dynamic = if gpu {
            self.spec.gpu_dynamic_power() * u
        } else {
            Watts::ZERO
        };
        dynamic + gpu_dynamic
    }

    /// Maximum dynamic power a container can draw (utilization 1.0).
    pub fn container_max_power(&self, cores: u32, gpu: bool) -> Watts {
        self.container_power(cores, 1.0, gpu)
    }

    /// Converts a power cap into the CPU quota (utilization ceiling) that
    /// enforces it — the cgroup mechanism from the paper. Caps at or
    /// above the container's maximum dynamic power yield quota 1;
    /// non-positive caps yield quota 0.
    pub fn quota_for_cap(&self, cores: u32, gpu: bool, cap: Watts) -> f64 {
        let denom = self.container_max_power(cores, gpu);
        if denom <= Watts::ZERO {
            return if cap >= Watts::ZERO { 1.0 } else { 0.0 };
        }
        (cap / denom).clamp(0.0, 1.0)
    }

    /// Power attributed to a [`Container`] given its current effective
    /// utilization and lifecycle state. Suspended and stopped containers
    /// draw nothing (the freezer releases their cycles).
    pub fn power_of(&self, container: &Container) -> Watts {
        match container.state() {
            ContainerState::Running => self.container_power(
                container.spec().cores,
                container.effective_utilization(),
                container.spec().gpu,
            ),
            _ => Watts::ZERO,
        }
    }

    /// Whole-server power at a given total utilization in `[0, 1]`
    /// (idle floor plus dynamic span).
    pub fn server_power(&self, utilization: f64) -> Watts {
        let u = utilization.clamp(0.0, 1.0);
        self.spec.idle_power + self.spec.cpu_dynamic_power() * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{AppId, ContainerId, ContainerSpec};
    use crate::server::{ServerId, ServerSpec};

    fn model() -> PowerModel {
        PowerModel::new(ServerSpec::microserver())
    }

    #[test]
    fn full_server_container_draws_dynamic_span() {
        // Microserver: 5 W busy − 1.35 W idle = 3.65 W dynamic.
        let p = model().container_power(4, 1.0, false);
        assert!((p.watts() - 3.65).abs() < 1e-9);
    }

    #[test]
    fn idle_container_draws_nothing() {
        assert_eq!(model().container_power(4, 0.0, false), Watts::ZERO);
        assert_eq!(model().container_power(2, 0.0, false), Watts::ZERO);
    }

    #[test]
    fn idle_share_still_apportions_host_floor() {
        assert!((model().idle_share(4).watts() - 1.35).abs() < 1e-9);
        assert!((model().idle_share(1).watts() - 0.3375).abs() < 1e-9);
    }

    #[test]
    fn gpu_container_adds_gpu_dynamic_power() {
        let m = PowerModel::new(ServerSpec::microserver_with_gpu());
        // CPU dynamic 3.65 + GPU dynamic 5.0 = 8.65 W at peak.
        let p = m.container_power(4, 1.0, true);
        assert!((p.watts() - 8.65).abs() < 1e-9);
    }

    #[test]
    fn quota_for_cap_is_exact() {
        let m = model();
        for cap_w in [0.5, 1.0, 2.0, 3.65] {
            let quota = m.quota_for_cap(4, false, Watts::new(cap_w));
            let power = m.container_power(4, quota, false);
            assert!(
                (power.watts() - cap_w).abs() < 1e-9,
                "cap {cap_w}: power {power}"
            );
        }
    }

    #[test]
    fn small_caps_still_allow_progress() {
        // Sub-idle caps used to starve containers; dynamic-only caps
        // always grant proportional utilization.
        let q = model().quota_for_cap(4, false, Watts::new(0.5));
        assert!(q > 0.1, "quota {q}");
    }

    #[test]
    fn cap_extremes() {
        assert_eq!(model().quota_for_cap(4, false, Watts::new(100.0)), 1.0);
        assert_eq!(model().quota_for_cap(4, false, Watts::ZERO), 0.0);
        assert_eq!(model().quota_for_cap(4, false, Watts::new(-1.0)), 0.0);
    }

    #[test]
    fn power_of_respects_state() {
        let m = model();
        let mut c = Container::new(
            ContainerId::new(1),
            AppId::new(1),
            ContainerSpec::quad_core(),
            ServerId::new(0),
        );
        c.set_demand(1.0);
        assert!((m.power_of(&c).watts() - 3.65).abs() < 1e-9);
        c.set_state(ContainerState::Suspended);
        assert_eq!(m.power_of(&c), Watts::ZERO);
    }

    #[test]
    fn server_power_interpolates() {
        let m = model();
        assert!((m.server_power(0.0).watts() - 1.35).abs() < 1e-9);
        assert!((m.server_power(1.0).watts() - 5.0).abs() < 1e-9);
        assert!((m.server_power(0.5).watts() - (1.35 + 3.65 / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped() {
        let m = model();
        assert_eq!(
            m.container_power(4, 2.0, false),
            m.container_power(4, 1.0, false)
        );
        assert_eq!(m.container_power(4, -1.0, false), Watts::ZERO);
    }
}
