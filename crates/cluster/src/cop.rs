//! The container orchestration platform (COP) API.
//!
//! [`Cop`] provides the LXD-like management surface the ecovisor wraps
//! (§3.1, §4): launching and destroying containers (horizontal scaling),
//! suspend/resume, cgroup-style CPU quotas (vertical scaling), power-cap
//! enforcement through quotas, and per-container/app/cluster power
//! attribution.

use std::collections::BTreeMap;

use simkit::units::Watts;

use crate::container::{AppId, Container, ContainerId, ContainerSpec, ContainerState};
use crate::error::CopError;
use crate::power::PowerModel;
use crate::scheduler::{FewestContainers, Placement};
use crate::server::{Server, ServerId, ServerSpec};

/// Cluster composition for a [`Cop`].
#[derive(Debug, Clone)]
pub struct CopConfig {
    /// Spec of each server in the cluster.
    pub servers: Vec<ServerSpec>,
}

impl CopConfig {
    /// A cluster of `n` ARM microservers (the paper's prototype).
    pub fn microserver_cluster(n: u32) -> Self {
        Self {
            servers: (0..n).map(|_| ServerSpec::microserver()).collect(),
        }
    }

    /// A microserver cluster where the first `gpus` nodes carry a GPU
    /// ("some of which have an attached NVIDIA Jetson Nano GPU", §4).
    pub fn microserver_cluster_with_gpus(n: u32, gpus: u32) -> Self {
        Self {
            servers: (0..n)
                .map(|i| {
                    if i < gpus {
                        ServerSpec::microserver_with_gpu()
                    } else {
                        ServerSpec::microserver()
                    }
                })
                .collect(),
        }
    }

    /// A cluster of `n` Dell PowerEdge R430s (the paper's conventional
    /// testbed for simulated power sources).
    pub fn poweredge_cluster(n: u32) -> Self {
        Self {
            servers: (0..n).map(|_| ServerSpec::poweredge_r430()).collect(),
        }
    }
}

/// The container orchestration platform.
pub struct Cop {
    servers: Vec<Server>,
    models: Vec<PowerModel>,
    containers: BTreeMap<ContainerId, Container>,
    scheduler: Box<dyn Placement>,
    next_id: u64,
}

impl std::fmt::Debug for Cop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cop")
            .field("servers", &self.servers.len())
            .field("containers", &self.containers.len())
            .finish_non_exhaustive()
    }
}

impl Cop {
    /// Creates a COP over the given cluster with the LXD default
    /// scheduler ([`FewestContainers`]).
    pub fn new(config: CopConfig) -> Self {
        Self::with_scheduler(config, Box::new(FewestContainers))
    }

    /// Creates a COP with a custom placement policy.
    ///
    /// # Panics
    ///
    /// Panics if the config has no servers or any server spec is invalid.
    pub fn with_scheduler(config: CopConfig, scheduler: Box<dyn Placement>) -> Self {
        assert!(!config.servers.is_empty(), "cluster must have servers");
        let servers: Vec<Server> = config
            .servers
            .iter()
            .enumerate()
            .map(|(i, spec)| Server::new(ServerId::new(i as u32), *spec))
            .collect();
        let models = config.servers.iter().map(|s| PowerModel::new(*s)).collect();
        Self {
            servers,
            models,
            containers: BTreeMap::new(),
            scheduler,
            next_id: 0,
        }
    }

    /// Launches a container for `owner`, placing it via the scheduler.
    ///
    /// # Errors
    ///
    /// [`CopError::InsufficientCapacity`] when no server fits the spec.
    pub fn launch(&mut self, owner: AppId, spec: ContainerSpec) -> Result<ContainerId, CopError> {
        let sid =
            self.scheduler
                .place(&self.servers, &spec)
                .ok_or(CopError::InsufficientCapacity {
                    cores: spec.cores,
                    memory_mib: spec.memory_mib,
                })?;
        let server = self
            .servers
            .iter_mut()
            .find(|s| s.id() == sid)
            .expect("scheduler returned a valid id");
        server.reserve(spec.cores, spec.memory_mib);
        let id = ContainerId::new(self.next_id);
        self.next_id += 1;
        self.containers
            .insert(id, Container::new(id, owner, spec, sid));
        Ok(id)
    }

    /// Destroys a container, releasing its resources. The container is
    /// retained in `Stopped` state for accounting history.
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] if absent; [`CopError::InvalidState`]
    /// if already stopped.
    pub fn stop(&mut self, id: ContainerId) -> Result<(), CopError> {
        let container = self
            .containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?;
        if container.state() == ContainerState::Stopped {
            return Err(CopError::InvalidState {
                container: id,
                reason: "already stopped".into(),
            });
        }
        let (cores, mem, sid) = (
            container.spec().cores,
            container.spec().memory_mib,
            container.server(),
        );
        container.set_state(ContainerState::Stopped);
        self.server_mut(sid).release(cores, mem);
        Ok(())
    }

    /// Freezes a running container (retains placement, zero utilization).
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] / [`CopError::InvalidState`].
    pub fn suspend(&mut self, id: ContainerId) -> Result<(), CopError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?;
        match c.state() {
            ContainerState::Running => {
                c.set_state(ContainerState::Suspended);
                Ok(())
            }
            _ => Err(CopError::InvalidState {
                container: id,
                reason: "only running containers can be suspended".into(),
            }),
        }
    }

    /// Thaws a suspended container.
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] / [`CopError::InvalidState`].
    pub fn resume(&mut self, id: ContainerId) -> Result<(), CopError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?;
        match c.state() {
            ContainerState::Suspended => {
                c.set_state(ContainerState::Running);
                Ok(())
            }
            _ => Err(CopError::InvalidState {
                container: id,
                reason: "only suspended containers can be resumed".into(),
            }),
        }
    }

    /// Sets (or clears) a container's application-visible power cap —
    /// the Table 1 `set_container_powercap` mechanism. Enforcement goes
    /// through the CPU quota (§2/§4 cgroups); the quota honors the
    /// tighter of this cap and any ecovisor-installed
    /// [carbon cap](Self::set_carbon_cap).
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] if absent.
    pub fn set_power_cap(&mut self, id: ContainerId, cap: Option<Watts>) -> Result<(), CopError> {
        self.containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?
            .set_power_cap(cap);
        self.refresh_quota(id);
        Ok(())
    }

    /// Sets (or clears) the ecovisor's carbon-enforcement cap component.
    /// Kept separate from the app's [`Self::set_power_cap`] so
    /// carbon-rate enforcement never clobbers (and is never clobbered
    /// by) the application's own setting; the quota enforces
    /// `min(user cap, carbon cap)`.
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] if absent.
    pub fn set_carbon_cap(&mut self, id: ContainerId, cap: Option<Watts>) -> Result<(), CopError> {
        self.containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?
            .set_carbon_cap(cap);
        self.refresh_quota(id);
        Ok(())
    }

    /// Recomputes a container's CPU quota from its effective power cap,
    /// via the host server's power model.
    fn refresh_quota(&mut self, id: ContainerId) {
        let c = self.containers.get_mut(&id).expect("caller verified");
        let model = self.models[c.server().value() as usize];
        match c.effective_power_cap() {
            Some(cap) => {
                let quota = model.quota_for_cap(c.spec().cores, c.spec().gpu, cap);
                c.set_cpu_quota(quota);
            }
            None => c.set_cpu_quota(1.0),
        }
    }

    /// Sets a container's CPU quota directly (vertical scaling).
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] if absent.
    pub fn set_cpu_quota(&mut self, id: ContainerId, quota: f64) -> Result<(), CopError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?;
        c.set_cpu_quota(quota);
        Ok(())
    }

    /// Sets a container's workload CPU demand for the current tick.
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] if absent.
    pub fn set_demand(&mut self, id: ContainerId, demand: f64) -> Result<(), CopError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(CopError::UnknownContainer(id))?;
        c.set_demand(demand);
        Ok(())
    }

    /// Looks up a container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// All live (running or suspended) containers of an app, in id order.
    pub fn containers_of(&self, owner: AppId) -> Vec<&Container> {
        self.containers
            .values()
            .filter(|c| c.owner() == owner && c.state() != ContainerState::Stopped)
            .collect()
    }

    /// Ids of an app's live containers, in id order.
    pub fn container_ids_of(&self, owner: AppId) -> Vec<ContainerId> {
        self.containers_of(owner).iter().map(|c| c.id()).collect()
    }

    /// Number of running containers for an app.
    pub fn running_count(&self, owner: AppId) -> usize {
        self.containers
            .values()
            .filter(|c| c.owner() == owner && c.state() == ContainerState::Running)
            .count()
    }

    /// Power attributed to one container.
    ///
    /// # Errors
    ///
    /// [`CopError::UnknownContainer`] if absent.
    pub fn container_power(&self, id: ContainerId) -> Result<Watts, CopError> {
        let c = self
            .containers
            .get(&id)
            .ok_or(CopError::UnknownContainer(id))?;
        Ok(self.models[c.server().value() as usize].power_of(c))
    }

    /// Power attributed to all of an app's containers.
    pub fn app_power(&self, owner: AppId) -> Watts {
        self.containers
            .values()
            .filter(|c| c.owner() == owner)
            .map(|c| self.models[c.server().value() as usize].power_of(c))
            .sum()
    }

    /// Effective compute capacity of an app in core-equivalents.
    pub fn app_effective_cores(&self, owner: AppId) -> f64 {
        self.containers
            .values()
            .filter(|c| c.owner() == owner)
            .map(Container::effective_cores)
            .sum()
    }

    /// Total cluster power: every server's idle power (the unattributed
    /// "baseline power" visible in the paper's Fig. 5d) plus the dynamic
    /// power of all running containers.
    pub fn total_power(&self) -> Watts {
        let idle: Watts = self.servers.iter().map(|s| s.spec().idle_power).sum();
        let dynamic: Watts = self
            .containers
            .values()
            .map(|c| self.models[c.server().value() as usize].power_of(c))
            .sum();
        idle + dynamic
    }

    /// Immutable view of the servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Every container of an app — stopped ones included, since they are
    /// retained for accounting history — in id order.
    pub fn all_containers_of(&self, owner: AppId) -> Vec<&Container> {
        self.containers
            .values()
            .filter(|c| c.owner() == owner)
            .collect()
    }

    /// The next container id this COP would allocate. Together with
    /// [`align_container_id`](Self::align_container_id) this is the
    /// federation coordinator's cursor surface: ids are allocated from a
    /// node-local counter, so a coordinator that partitions tenants over
    /// several COPs aligns each node's counter to a global cursor before
    /// dispatching launches, keeping allocation identical to a
    /// single-node run.
    pub fn next_container_id(&self) -> u64 {
        self.next_id
    }

    /// Advances the container-id counter to `next`.
    ///
    /// # Errors
    ///
    /// Moving the counter backwards would let a future launch reuse a
    /// live id; such a request is refused with a description.
    pub fn align_container_id(&mut self, next: u64) -> Result<(), String> {
        if next < self.next_id {
            return Err(format!(
                "container-id cursor cannot move backwards ({next} < {})",
                self.next_id
            ));
        }
        self.next_id = next;
        Ok(())
    }

    /// Removes every container owned by `owner` (stopped history
    /// included), releasing the server reservations of live ones.
    /// Returns the removed containers in id order.
    pub fn remove_app_containers(&mut self, owner: AppId) -> Vec<Container> {
        let ids: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.owner() == owner)
            .map(|c| c.id())
            .collect();
        let mut removed = Vec::with_capacity(ids.len());
        for id in ids {
            let c = self.containers.remove(&id).expect("listed above");
            if c.state() != ContainerState::Stopped {
                let (cores, mem, sid) = (c.spec().cores, c.spec().memory_mib, c.server());
                self.server_mut(sid).release(cores, mem);
            }
            removed.push(c);
        }
        removed
    }

    /// Adopts containers captured on another COP (a migrating tenant's),
    /// preserving their ids, placement, caps, and state. All-or-nothing:
    /// every container is validated — and live ones checked against the
    /// target servers' free capacity — before anything is inserted.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: an id collision, a
    /// duplicate in the input, an out-of-range server reference, a GPU
    /// container on a GPU-less server, or insufficient capacity.
    pub fn adopt_containers(&mut self, adopted: &[Container]) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut required: BTreeMap<ServerId, (u32, u64)> = BTreeMap::new();
        for c in adopted {
            if self.containers.contains_key(&c.id()) {
                return Err(format!("container id {} already exists here", c.id()));
            }
            if !seen.insert(c.id()) {
                return Err(format!("duplicate container id {} in transfer", c.id()));
            }
            let sid = c.server();
            let Some(server) = self.servers.iter().find(|s| s.id() == sid) else {
                return Err(format!(
                    "container {} references unknown server {sid}",
                    c.id()
                ));
            };
            if c.spec().gpu && !server.spec().has_gpu() {
                return Err(format!(
                    "container {} needs a GPU but server {sid} has none",
                    c.id()
                ));
            }
            if c.state() != ContainerState::Stopped {
                let need = required.entry(sid).or_insert((0, 0));
                need.0 += c.spec().cores;
                need.1 += c.spec().memory_mib;
            }
        }
        for (&sid, &(cores, mem)) in &required {
            let server = self
                .servers
                .iter()
                .find(|s| s.id() == sid)
                .expect("checked");
            if server.free_cores() < cores || server.free_memory_mib() < mem {
                return Err(format!(
                    "server {sid} lacks capacity for migrating containers \
                     ({cores} cores / {mem} MiB needed)"
                ));
            }
        }
        let mut max_id = self.next_id;
        for c in adopted {
            if c.state() != ContainerState::Stopped {
                let (cores, mem, sid) = (c.spec().cores, c.spec().memory_mib, c.server());
                self.server_mut(sid).reserve(cores, mem);
            }
            max_id = max_id.max(c.id().value() + 1);
            self.containers.insert(c.id(), c.clone());
        }
        self.next_id = max_id;
        Ok(())
    }

    /// Power model of the server hosting `id`, if the container exists.
    pub fn model_for(&self, id: ContainerId) -> Option<&PowerModel> {
        self.containers
            .get(&id)
            .map(|c| &self.models[c.server().value() as usize])
    }

    fn server_mut(&mut self, id: ServerId) -> &mut Server {
        self.servers
            .iter_mut()
            .find(|s| s.id() == id)
            .expect("server ids are stable")
    }

    /// Captures the COP's dynamic state for checkpointing.
    ///
    /// The placement policy and power models are *not* captured: placement
    /// is a pure function of the restored server occupancy, and the power
    /// models are rebuilt deterministically from the server specs.
    pub fn snapshot(&self) -> CopSnapshot {
        CopSnapshot {
            servers: self.servers.clone(),
            containers: self.containers.values().cloned().collect(),
            next_id: self.next_id,
        }
    }

    /// Restores dynamic state captured by [`Cop::snapshot`].
    ///
    /// The receiving COP must have been built over the *same cluster
    /// composition* (server count and specs). The scheduler is kept;
    /// power models are rebuilt from the restored specs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch: server
    /// count or spec divergence, a container referencing an out-of-range
    /// server, a duplicate container id, or an id at or above `next_id`.
    pub fn restore(&mut self, snap: &CopSnapshot) -> Result<(), String> {
        if snap.servers.len() != self.servers.len() {
            return Err(format!(
                "snapshot has {} servers, cluster has {}",
                snap.servers.len(),
                self.servers.len()
            ));
        }
        for (have, want) in self.servers.iter().zip(&snap.servers) {
            if have.id() != want.id() {
                return Err(format!(
                    "snapshot server id {} does not match cluster server id {}",
                    want.id(),
                    have.id()
                ));
            }
            if have.spec() != want.spec() {
                return Err(format!("server {} spec differs from snapshot", have.id()));
            }
        }
        let mut containers = BTreeMap::new();
        for c in &snap.containers {
            if c.server().value() as usize >= snap.servers.len() {
                return Err(format!(
                    "container {} references unknown server {}",
                    c.id(),
                    c.server()
                ));
            }
            if c.id().value() >= snap.next_id {
                return Err(format!(
                    "container id {} is at or above next_id {}",
                    c.id(),
                    snap.next_id
                ));
            }
            if containers.insert(c.id(), c.clone()).is_some() {
                return Err(format!("duplicate container id {} in snapshot", c.id()));
            }
        }
        self.servers = snap.servers.clone();
        self.models = snap
            .servers
            .iter()
            .map(|s| PowerModel::new(*s.spec()))
            .collect();
        self.containers = containers;
        self.next_id = snap.next_id;
        Ok(())
    }
}

/// Serializable dynamic state of a [`Cop`], captured by [`Cop::snapshot`]
/// and reinstated by [`Cop::restore`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CopSnapshot {
    /// Per-server occupancy bookkeeping, in id order (specs included so
    /// restore can verify the cluster composition matches).
    pub servers: Vec<Server>,
    /// Every container ever launched — stopped ones included, since they
    /// are retained for accounting history — in id order.
    pub containers: Vec<Container>,
    /// Next container id to allocate.
    pub next_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cop() -> Cop {
        Cop::new(CopConfig::microserver_cluster(4))
    }

    #[test]
    fn launch_and_stop_lifecycle() {
        let mut cop = cop();
        let app = AppId::new(1);
        let id = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        assert_eq!(cop.running_count(app), 1);
        cop.stop(id).expect("stoppable");
        assert_eq!(cop.running_count(app), 0);
        assert_eq!(
            cop.container(id).expect("retained").state(),
            ContainerState::Stopped
        );
        // Double stop is an error.
        assert!(matches!(cop.stop(id), Err(CopError::InvalidState { .. })));
    }

    #[test]
    fn capacity_exhaustion() {
        let mut cop = Cop::new(CopConfig::microserver_cluster(2));
        let app = AppId::new(1);
        cop.launch(app, ContainerSpec::quad_core())
            .expect("first fits");
        cop.launch(app, ContainerSpec::quad_core())
            .expect("second fits");
        let err = cop.launch(app, ContainerSpec::quad_core()).unwrap_err();
        assert!(matches!(
            err,
            CopError::InsufficientCapacity { cores: 4, .. }
        ));
        // Stopping frees capacity.
        let ids = cop.container_ids_of(app);
        cop.stop(ids[0]).expect("stoppable");
        assert!(cop.launch(app, ContainerSpec::quad_core()).is_ok());
    }

    #[test]
    fn suspend_resume_round_trip() {
        let mut cop = cop();
        let app = AppId::new(1);
        let id = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        cop.set_demand(id, 1.0).expect("exists");
        cop.suspend(id).expect("running");
        assert_eq!(cop.container_power(id).expect("exists"), Watts::ZERO);
        assert!(matches!(
            cop.suspend(id),
            Err(CopError::InvalidState { .. })
        ));
        cop.resume(id).expect("suspended");
        assert!(cop.container_power(id).expect("exists") > Watts::ZERO);
    }

    #[test]
    fn power_cap_converts_to_quota() {
        let mut cop = cop();
        let app = AppId::new(1);
        let id = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        cop.set_demand(id, 1.0).expect("exists");
        cop.set_power_cap(id, Some(Watts::new(3.0)))
            .expect("exists");
        let c = cop.container(id).expect("exists");
        assert_eq!(c.power_cap(), Some(Watts::new(3.0)));
        let p = cop.container_power(id).expect("exists");
        assert!(
            (p.watts() - 3.0).abs() < 1e-9,
            "power {p} should sit at the cap"
        );
        // Clearing the cap restores full quota.
        cop.set_power_cap(id, None).expect("exists");
        assert_eq!(cop.container(id).expect("exists").cpu_quota(), 1.0);
    }

    #[test]
    fn carbon_cap_composes_with_user_cap() {
        let mut cop = cop();
        let app = AppId::new(1);
        let id = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        cop.set_demand(id, 1.0).expect("exists");
        cop.set_power_cap(id, Some(Watts::new(3.0)))
            .expect("exists");
        cop.set_carbon_cap(id, Some(Watts::new(2.0)))
            .expect("exists");
        // Effective = min(3, 2) = 2; the app-visible cap stays 3.
        assert_eq!(
            cop.container(id).expect("exists").power_cap(),
            Some(Watts::new(3.0))
        );
        let p = cop.container_power(id).expect("exists");
        assert!((p.watts() - 2.0).abs() < 1e-9, "capped power {p}");
        // Clearing the carbon component restores the user cap.
        cop.set_carbon_cap(id, None).expect("exists");
        let p = cop.container_power(id).expect("exists");
        assert!((p.watts() - 3.0).abs() < 1e-9, "user-capped power {p}");
        // A carbon cap looser than the user cap does not tighten it.
        cop.set_carbon_cap(id, Some(Watts::new(10.0)))
            .expect("exists");
        let p = cop.container_power(id).expect("exists");
        assert!((p.watts() - 3.0).abs() < 1e-9, "loose carbon cap {p}");
        // Clearing both restores full quota.
        cop.set_carbon_cap(id, None).expect("exists");
        cop.set_power_cap(id, None).expect("exists");
        assert_eq!(cop.container(id).expect("exists").cpu_quota(), 1.0);
    }

    #[test]
    fn app_power_and_effective_cores() {
        let mut cop = cop();
        let app = AppId::new(1);
        let other = AppId::new(2);
        let a = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        let b = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        let c = cop.launch(other, ContainerSpec::quad_core()).expect("fits");
        for id in [a, b, c] {
            cop.set_demand(id, 1.0).expect("exists");
        }
        assert!((cop.app_power(app).watts() - 7.3).abs() < 1e-9);
        assert!((cop.app_effective_cores(app) - 8.0).abs() < 1e-12);
        assert!((cop.app_power(other).watts() - 3.65).abs() < 1e-9);
    }

    #[test]
    fn total_power_includes_unallocated_idle() {
        let mut cop = Cop::new(CopConfig::microserver_cluster(4));
        // Empty cluster: 4 × 1.35 W idle.
        assert!((cop.total_power().watts() - 5.4).abs() < 1e-9);
        let app = AppId::new(1);
        let id = cop.launch(app, ContainerSpec::quad_core()).expect("fits");
        cop.set_demand(id, 1.0).expect("exists");
        // One saturated server adds 3.65 W of dynamic power.
        assert!((cop.total_power().watts() - (5.4 + 3.65)).abs() < 1e-9);
    }

    #[test]
    fn placement_spreads_across_servers() {
        let mut cop = Cop::new(CopConfig::microserver_cluster(3));
        let app = AppId::new(1);
        let ids: Vec<ContainerId> = (0..3)
            .map(|_| cop.launch(app, ContainerSpec::single_core()).expect("fits"))
            .collect();
        let mut hosts: Vec<ServerId> = ids
            .iter()
            .map(|id| cop.container(*id).expect("exists").server())
            .collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), 3);
    }

    #[test]
    fn gpu_containers_need_gpu_servers() {
        let mut cop = Cop::new(CopConfig::microserver_cluster_with_gpus(3, 1));
        let app = AppId::new(1);
        let spec = ContainerSpec::quad_core().with_gpu();
        let id = cop.launch(app, spec).expect("one gpu server");
        assert_eq!(
            cop.container(id).expect("exists").server(),
            ServerId::new(0)
        );
        // Second GPU container cannot fit.
        assert!(cop.launch(app, spec).is_err());
    }

    #[test]
    fn unknown_container_errors() {
        let mut cop = cop();
        let ghost = ContainerId::new(999);
        assert!(matches!(
            cop.stop(ghost),
            Err(CopError::UnknownContainer(_))
        ));
        assert!(matches!(
            cop.set_demand(ghost, 1.0),
            Err(CopError::UnknownContainer(_))
        ));
        assert!(matches!(
            cop.set_power_cap(ghost, None),
            Err(CopError::UnknownContainer(_))
        ));
        assert!(cop.container_power(ghost).is_err());
    }
}
