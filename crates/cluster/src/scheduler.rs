//! Container placement scheduling.
//!
//! The paper uses "LXD's default container scheduler, which simply
//! allocates a container to the server with the fewest container
//! instances" (§4). That policy is [`FewestContainers`]; the [`Placement`]
//! trait leaves room for alternatives (best-fit is provided for the
//! ablation benches).

use crate::container::ContainerSpec;
use crate::server::{Server, ServerId};

/// A placement policy choosing a server for a new container.
pub trait Placement: Send + Sync {
    /// Returns the id of the server to host `spec`, or `None` when no
    /// server fits.
    fn place(&self, servers: &[Server], spec: &ContainerSpec) -> Option<ServerId>;
}

/// LXD's default policy: the feasible server with the fewest containers,
/// breaking ties by lowest server id (deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct FewestContainers;

impl Placement for FewestContainers {
    fn place(&self, servers: &[Server], spec: &ContainerSpec) -> Option<ServerId> {
        servers
            .iter()
            .filter(|s| s.fits(spec.cores, spec.memory_mib, spec.gpu))
            .min_by_key(|s| (s.container_count(), s.id()))
            .map(|s| s.id())
    }
}

/// Best-fit policy: the feasible server with the fewest free cores
/// (packs tightly, leaving whole servers idle for power gating).
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

impl Placement for BestFit {
    fn place(&self, servers: &[Server], spec: &ContainerSpec) -> Option<ServerId> {
        servers
            .iter()
            .filter(|s| s.fits(spec.cores, spec.memory_mib, spec.gpu))
            .min_by_key(|s| (s.free_cores(), s.id()))
            .map(|s| s.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;

    fn cluster(n: u32) -> Vec<Server> {
        (0..n)
            .map(|i| Server::new(ServerId::new(i), ServerSpec::microserver()))
            .collect()
    }

    #[test]
    fn fewest_containers_balances() {
        let mut servers = cluster(3);
        let spec = ContainerSpec::single_core();
        let sched = FewestContainers;
        // Place 3 containers; each should land on a distinct server.
        let mut placed = Vec::new();
        for _ in 0..3 {
            let sid = sched.place(&servers, &spec).expect("fits");
            let s = servers.iter_mut().find(|s| s.id() == sid).expect("exists");
            s.reserve(spec.cores, spec.memory_mib);
            placed.push(sid);
        }
        placed.sort();
        placed.dedup();
        assert_eq!(placed.len(), 3);
    }

    #[test]
    fn fewest_containers_ties_break_by_id() {
        let servers = cluster(2);
        let sid = FewestContainers
            .place(&servers, &ContainerSpec::single_core())
            .expect("fits");
        assert_eq!(sid, ServerId::new(0));
    }

    #[test]
    fn infeasible_when_no_capacity() {
        let mut servers = cluster(1);
        servers[0].reserve(4, 4096);
        assert!(FewestContainers
            .place(&servers, &ContainerSpec::single_core())
            .is_none());
    }

    #[test]
    fn gpu_spec_requires_gpu_server() {
        let mut servers = cluster(2);
        servers.push(Server::new(
            ServerId::new(2),
            ServerSpec::microserver_with_gpu(),
        ));
        let spec = ContainerSpec::single_core().with_gpu();
        let sid = FewestContainers.place(&servers, &spec).expect("gpu server");
        assert_eq!(sid, ServerId::new(2));
    }

    #[test]
    fn best_fit_packs_tightly() {
        let mut servers = cluster(2);
        servers[0].reserve(3, 1024); // 1 core free
        let sid = BestFit
            .place(&servers, &ContainerSpec::single_core())
            .expect("fits");
        assert_eq!(
            sid,
            ServerId::new(0),
            "best-fit should fill the fuller server"
        );
        let sid2 = FewestContainers
            .place(&servers, &ContainerSpec::single_core())
            .expect("fits");
        assert_eq!(sid2, ServerId::new(1), "fewest-containers spreads out");
    }
}
