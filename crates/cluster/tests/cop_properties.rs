//! Randomized property tests of the COP: capacity accounting, cap→quota
//! round-trips, and placement feasibility under arbitrary launch/stop
//! sequences.
//!
//! Cases are generated from a fixed-seed [`SimRng`] stream (the offline
//! replacement for proptest), so failures are exactly reproducible.

use container_cop::{AppId, ContainerId, ContainerSpec, Cop, CopConfig, PowerModel, ServerSpec};
use simkit::rng::SimRng;
use simkit::units::Watts;

#[derive(Debug, Clone, Copy)]
enum Op {
    Launch(u32),
    StopOldest,
    SuspendNewest,
    Cap(f64),
}

fn arb_op(rng: &mut SimRng) -> Op {
    match rng.uniform_u64(0, 4) {
        0 => Op::Launch(rng.uniform_u64(1, 5) as u32),
        1 => Op::StopOldest,
        2 => Op::SuspendNewest,
        _ => Op::Cap(rng.uniform(0.0, 6.0)),
    }
}

/// Server reservations never go negative or exceed capacity, across
/// arbitrary operation sequences, and placement never double-books.
#[test]
fn capacity_accounting_holds() {
    let mut rng = SimRng::from_seed(4004).fork("capacity_accounting_holds");
    for _ in 0..128 {
        let servers = rng.uniform_u64(1, 8) as u32;
        let ops: Vec<Op> = (0..rng.uniform_u64(1, 60))
            .map(|_| arb_op(&mut rng))
            .collect();
        let mut cop = Cop::new(CopConfig::microserver_cluster(servers));
        let app = AppId::new(1);
        let mut live: Vec<ContainerId> = Vec::new();
        for op in ops {
            match op {
                Op::Launch(cores) => {
                    if let Ok(id) = cop.launch(app, ContainerSpec::with_cores(cores)) {
                        live.push(id);
                    }
                }
                Op::StopOldest => {
                    if !live.is_empty() {
                        let id = live.remove(0);
                        let _ = cop.stop(id);
                    }
                }
                Op::SuspendNewest => {
                    if let Some(id) = live.last() {
                        let _ = cop.suspend(*id);
                    }
                }
                Op::Cap(w) => {
                    if let Some(id) = live.last() {
                        let _ = cop.set_power_cap(*id, Some(Watts::new(w)));
                    }
                }
            }
            for s in cop.servers() {
                assert!(s.free_cores() <= s.spec().cores);
                assert!(s.free_memory_mib() <= s.spec().memory_mib);
            }
            // Sum of live containers' cores never exceeds cluster cores.
            let used: u32 = live
                .iter()
                .filter_map(|id| cop.container(*id))
                .map(|c| c.spec().cores)
                .sum();
            assert!(used <= servers * 4);
        }
    }
}

/// For any cap, the enforced container power never exceeds the cap, and
/// caps at/above max dynamic power leave the quota at 1.
#[test]
fn cap_quota_roundtrip() {
    let mut rng = SimRng::from_seed(4004).fork("cap_quota_roundtrip");
    for _ in 0..128 {
        let cores = rng.uniform_u64(1, 5) as u32;
        let cap_w = rng.uniform(0.0, 10.0);
        let demand = rng.unit();
        let model = PowerModel::new(ServerSpec::microserver());
        let quota = model.quota_for_cap(cores, false, Watts::new(cap_w));
        let u = demand.min(quota);
        let power = model.container_power(cores, u, false);
        assert!(
            power.watts() <= cap_w + 1e-9,
            "power {power} exceeds cap {cap_w}"
        );
        if cap_w >= model.container_max_power(cores, false).watts() {
            assert_eq!(quota, 1.0);
        }
    }
}

/// Cluster power is the idle floor plus attributed dynamic power — total
/// power minus idle equals the sum over container powers.
#[test]
fn total_power_decomposes() {
    let mut rng = SimRng::from_seed(4004).fork("total_power_decomposes");
    for _ in 0..128 {
        let n = rng.uniform_u64(1, 6) as u32;
        let demands: Vec<f64> = (0..rng.uniform_u64(1, 6)).map(|_| rng.unit()).collect();
        let mut cop = Cop::new(CopConfig::microserver_cluster(n * 2));
        let app = AppId::new(1);
        let mut ids = Vec::new();
        for d in &demands {
            if let Ok(id) = cop.launch(app, ContainerSpec::quad_core()) {
                cop.set_demand(id, *d).unwrap();
                ids.push(id);
            }
        }
        let idle: f64 = cop
            .servers()
            .iter()
            .map(|s| s.spec().idle_power.watts())
            .sum();
        let attributed: f64 = ids
            .iter()
            .map(|id| cop.container_power(*id).unwrap().watts())
            .sum();
        let total = cop.total_power().watts();
        assert!(
            (total - idle - attributed).abs() < 1e-9,
            "total {total} != idle {idle} + attributed {attributed}"
        );
    }
}
