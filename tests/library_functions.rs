//! Table 2 conformance: the library layer's interval queries, carbon
//! rates/budgets, and notification upcalls, end to end.

use ecovisor_suite::carbon_intel::service::TraceCarbonService;
use ecovisor_suite::container_cop::{ContainerSpec, CopConfig};
use ecovisor_suite::ecovisor::{
    Application, EcovisorApi, EcovisorBuilder, EcovisorClient, EnergyClient, EnergyShare,
    LibraryApi, Notification, Simulation,
};
use ecovisor_suite::energy_system::solar::TraceSolarSource;
use ecovisor_suite::simkit::time::{SimDuration, SimTime};
use ecovisor_suite::simkit::trace::Trace;
use ecovisor_suite::simkit::units::{CarbonRate, Co2Grams, WattHours, Watts};

struct TwoContainers;
impl Application for TwoContainers {
    fn on_start(&mut self, api: &mut EcovisorClient<'_>) {
        for demand in [1.0, 0.5] {
            let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
            api.set_container_demand(c, demand).unwrap();
        }
    }
    fn on_tick(&mut self, _api: &mut EcovisorClient<'_>) {}
}

#[test]
fn interval_energy_and_carbon_queries() {
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(8))
        .carbon(Box::new(TraceCarbonService::new(
            "flat",
            Trace::constant(1000.0),
        )))
        .build();
    let mut s = Simulation::new(eco);
    let app = s
        .add_app("q", EnergyShare::grid_only(), Box::new(TwoContainers))
        .unwrap();
    s.run_ticks(60);

    let (from, to) = (SimTime::EPOCH, s.eco().now());
    let api = s.eco_mut().scoped(app).unwrap();

    // get_app_power: 3.65 + 1.825 = 5.475 W.
    assert!((api.get_app_power().watts() - 5.475).abs() < 1e-9);

    // get_app_energy over the hour.
    let energy = api.get_app_energy(from, to);
    assert!(
        (energy.watt_hours() - 5.475).abs() < 0.01,
        "energy {energy}"
    );

    // get_app_carbon == interval carbon over the whole run.
    let carbon = api.get_app_carbon();
    assert!((carbon.grams() - 5.475).abs() < 0.01, "carbon {carbon}");
    let between = api.get_app_carbon_between(from, to);
    assert!(carbon.abs_diff(between) < 0.01);

    // Container-level queries partition the app totals (2:1 demand).
    let ids = api.container_ids();
    let e0 = api.get_container_energy(ids[0], from, to).unwrap();
    let e1 = api.get_container_energy(ids[1], from, to).unwrap();
    assert!((e0.watt_hours() / e1.watt_hours() - 2.0).abs() < 0.01);
    let c0 = api.get_container_carbon(ids[0], from, to).unwrap();
    let c1 = api.get_container_carbon(ids[1], from, to).unwrap();
    assert!(((c0 + c1).grams() - carbon.grams()).abs() < 0.01);
}

#[test]
fn carbon_rate_and_budget_tracking() {
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(4))
        .carbon(Box::new(TraceCarbonService::new(
            "flat",
            Trace::constant(500.0),
        )))
        .build();
    let mut s = Simulation::new(eco);
    let app = s
        .add_app("rb", EnergyShare::grid_only(), Box::new(TwoContainers))
        .unwrap();
    {
        let mut api = s.eco_mut().scoped(app).unwrap();
        api.set_carbon_rate(Some(CarbonRate::from_milligrams_per_sec(0.2)));
        api.set_carbon_budget(Some(Co2Grams::new(2.0)));
        assert_eq!(
            api.carbon_rate_limit(),
            Some(CarbonRate::from_milligrams_per_sec(0.2))
        );
        assert_eq!(api.carbon_budget(), Some(Co2Grams::new(2.0)));
    }
    s.run_ticks(120);
    {
        let api = s.eco_mut().scoped(app).unwrap();
        // Rate enforced: 0.2 mg/s at 500 g/kWh allows 1.44 W.
        let flows_power = api.get_app_power();
        assert!(
            flows_power.watts() <= 1.44 + 1e-6,
            "rate cap violated: {flows_power}"
        );
        let remaining = api.remaining_carbon_budget().unwrap();
        assert!(remaining < Co2Grams::new(2.0));
        assert!(remaining >= Co2Grams::ZERO);
    }
}

#[test]
fn notify_upcalls_fire() {
    #[derive(Default)]
    struct Collector {
        solar_changes: u64,
        carbon_changes: u64,
        battery_empty: u64,
    }
    struct EventApp(ecovisor_suite::carbon_policies::Shared<Collector>);
    impl Application for EventApp {
        fn on_start(&mut self, api: &mut EcovisorClient<'_>) {
            let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
            api.set_container_demand(c, 1.0).unwrap();
            api.set_battery_max_discharge(Watts::new(1000.0));
        }
        fn on_tick(&mut self, _api: &mut EcovisorClient<'_>) {}
        fn on_event(&mut self, event: &Notification, _api: &mut EcovisorClient<'_>) {
            let mut c = self.0.borrow_mut();
            match event {
                Notification::SolarChange { .. } => c.solar_changes += 1,
                Notification::CarbonChange { .. } => c.carbon_changes += 1,
                Notification::BatteryEmpty => c.battery_empty += 1,
                Notification::BatteryFull | Notification::BudgetExhausted { .. } => {}
            }
        }
    }

    // Solar square wave and a carbon step change trigger notifications; a
    // small battery drains to empty under load.
    let solar = Trace::from_samples(vec![0.0, 100.0], SimDuration::from_minutes(5))
        .with_extend(ecovisor_suite::simkit::trace::Extend::Cycle);
    let carbon = Trace::from_samples(vec![100.0, 400.0], SimDuration::from_minutes(30))
        .with_extend(ecovisor_suite::simkit::trace::Extend::Cycle);
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(4))
        .solar(Box::new(TraceSolarSource::new(solar)))
        .carbon(Box::new(TraceCarbonService::new("wave", carbon)))
        .build();
    let mut s = Simulation::new(eco);
    let collector = ecovisor_suite::carbon_policies::shared(Collector::default());
    let share = EnergyShare::grid_only()
        .with_solar_fraction(0.2)
        .with_battery(WattHours::new(3.0))
        .with_initial_soc(1.0);
    s.add_app("events", share, Box::new(EventApp(collector.clone())))
        .unwrap();
    s.run_ticks(120);

    let c = collector.borrow();
    assert!(c.solar_changes > 5, "solar changes: {}", c.solar_changes);
    assert!(
        c.carbon_changes >= 2,
        "carbon changes: {}",
        c.carbon_changes
    );
    // The tiny battery drains, partially recharges on the solar wave,
    // and can drain again — at least one empty edge must fire, and each
    // firing must be a genuine full→empty transition (no spam).
    assert!(
        c.battery_empty >= 1,
        "battery empty events: {}",
        c.battery_empty
    );
    assert!(
        c.battery_empty <= 10,
        "battery empty spam: {}",
        c.battery_empty
    );
}
