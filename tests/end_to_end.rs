//! Cross-crate end-to-end scenarios: concurrent heterogeneous tenants on
//! one ecovisor, exercising every substrate at once.

use ecovisor_suite::carbon_intel::{regions, CarbonTraceBuilder};
use ecovisor_suite::carbon_policies::{
    BatchApp, BatchMode, SparkApp, SparkMode, WebApp, WebPolicy,
};
use ecovisor_suite::container_cop::CopConfig;
use ecovisor_suite::ecovisor::{EcovisorBuilder, EnergyShare, ExcessPolicy, Simulation};
use ecovisor_suite::energy_system::solar::{SolarArrayBuilder, Weather};
use ecovisor_suite::simkit::time::SimDuration;
use ecovisor_suite::simkit::units::{CarbonRate, WattHours, Watts};
use ecovisor_suite::workloads::blast::blast_job;
use ecovisor_suite::workloads::spark::SparkJob;
use ecovisor_suite::workloads::traces::WorkloadTraceBuilder;
use ecovisor_suite::workloads::web::WebService;

/// Three very different tenants — a W&S batch job, a carbon-budgeted web
/// service, and a solar+battery Spark job — run concurrently for two
/// simulated days. Verifies isolation, conservation, and that the PSU
/// never observes the cluster exceeding its physical envelope.
#[test]
fn heterogeneous_multi_tenant_day() {
    let carbon = CarbonTraceBuilder::new(regions::california())
        .days(3)
        .seed(99)
        .build_service();
    let solar = SolarArrayBuilder::new(100.0)
        .days(3)
        .weather(Weather::Mixed)
        .seed(99)
        .build_source();
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(32))
        .carbon(Box::new(carbon))
        .solar(Box::new(solar))
        .excess(ExcessPolicy::Redistribute)
        .build();
    let mut sim = Simulation::new(eco);

    // Tenant 1: BLAST under Wait&Scale.
    let blast = BatchApp::new(
        "blast",
        blast_job(),
        BatchMode::WaitAndScale {
            threshold: ecovisor_suite::simkit::units::CarbonIntensity::new(200.0),
            scale: 3,
        },
        2,
        4,
    );
    let blast_id = sim
        .add_app("blast", EnergyShare::grid_only(), Box::new(blast))
        .unwrap();

    // Tenant 2: web service with a dynamic carbon budget.
    let web = WebApp::new(
        "web",
        WebService::new(100.0),
        WorkloadTraceBuilder::new(50.0, 400.0)
            .days(3)
            .seed(4)
            .build(),
        WebPolicy::DynamicBudget {
            target_rate: CarbonRate::from_milligrams_per_sec(0.3),
            slo_ms: 60.0,
        },
        60.0,
    );
    let web_stats = web.stats();
    let web_id = sim
        .add_app("web", EnergyShare::grid_only(), Box::new(web))
        .unwrap();

    // Tenant 3: zero-carbon Spark on solar + battery.
    let spark = SparkApp::new(
        "spark",
        SparkJob::new(80.0, SimDuration::from_minutes(30)),
        SparkMode::DynamicSolar {
            base_workers: 2,
            max_workers: 10,
        },
        Watts::new(8.0),
    );
    let spark_id = sim
        .add_app(
            "spark",
            EnergyShare::grid_only()
                .with_solar_fraction(1.0)
                .with_battery(WattHours::new(1000.0))
                .with_initial_soc(0.6),
            Box::new(spark),
        )
        .unwrap();

    sim.eco_mut().set_psu_limit(Some(Watts::new(200.0)));
    sim.run_ticks(2 * 24 * 60);

    // Conservation per tenant, every tenant.
    for id in [blast_id, web_id, spark_id] {
        let flows = sim.eco().app_flows(id).unwrap();
        assert!(flows.is_conserved(), "app {id}: {flows:?}");
    }

    // The Spark tenant used solar/battery, not the grid.
    let spark_totals = sim.eco().app_totals(spark_id).unwrap();
    assert!(
        spark_totals.carbon.grams() < 0.5,
        "spark carbon {}",
        spark_totals.carbon
    );
    assert!(spark_totals.solar_energy > WattHours::new(50.0));

    // The web tenant respected its budget pace within slack.
    let web_totals = sim.eco().app_totals(web_id).unwrap();
    let allowance = 0.0003 * (2 * 24 * 3600) as f64;
    assert!(
        web_totals.carbon.grams() < allowance * 1.5,
        "web carbon {} vs allowance {allowance}",
        web_totals.carbon
    );
    assert!(web_stats.borrow().ticks > 0);

    // The grid-facing draw never exceeded the physical envelope.
    assert!(
        sim.eco().psu().limit_respected(),
        "violations: {:?}",
        sim.eco().psu().violations()
    );

    // Virtual batteries stayed within the physical bank.
    assert!(sim.eco().virtual_battery_total() <= sim.eco().physical_battery().spec().capacity);
}

/// Determinism: the same seed produces bit-identical accounting.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let carbon = CarbonTraceBuilder::new(regions::california())
            .days(2)
            .seed(5)
            .build_service();
        let eco = EcovisorBuilder::new()
            .cluster(CopConfig::microserver_cluster(8))
            .carbon(Box::new(carbon))
            .build();
        let mut sim = Simulation::new(eco);
        let web = WebApp::new(
            "web",
            WebService::new(100.0),
            WorkloadTraceBuilder::new(50.0, 300.0)
                .days(2)
                .seed(6)
                .build(),
            WebPolicy::DynamicBudget {
                target_rate: CarbonRate::from_milligrams_per_sec(0.3),
                slo_ms: 60.0,
            },
            60.0,
        );
        let id = sim
            .add_app("web", EnergyShare::grid_only(), Box::new(web))
            .unwrap();
        sim.run_ticks(12 * 60);
        sim.eco().app_totals(id).unwrap().carbon.grams()
    };
    assert_eq!(run().to_bits(), run().to_bits());
}
