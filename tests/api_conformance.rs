//! Table 1 conformance: every function of the paper's narrow API exists
//! with the documented semantics, end to end across all crates.

use ecovisor_suite::carbon_intel::service::TraceCarbonService;
use ecovisor_suite::container_cop::{ContainerSpec, CopConfig};
use ecovisor_suite::ecovisor::{
    Application, EcovisorApi, EcovisorBuilder, EnergyShare, LibraryApi, Simulation,
};
use ecovisor_suite::energy_system::solar::TraceSolarSource;
use ecovisor_suite::simkit::trace::Trace;
use ecovisor_suite::simkit::units::{WattHours, Watts};

struct Idle;
impl Application for Idle {
    fn on_tick(&mut self, _api: &mut dyn LibraryApi) {}
}

fn sim() -> Simulation {
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(8))
        .carbon(Box::new(TraceCarbonService::new(
            "flat",
            Trace::constant(250.0),
        )))
        .solar(Box::new(TraceSolarSource::new(Trace::constant(60.0))))
        .build();
    Simulation::new(eco)
}

#[test]
fn table1_setters_and_getters() {
    let mut s = sim();
    let share = EnergyShare::grid_only()
        .with_solar_fraction(0.5)
        .with_battery(WattHours::new(720.0))
        .with_initial_soc(0.8);
    let app = s.add_app("t1", share, Box::new(Idle)).unwrap();
    // Run two ticks so solar buffers and flows settle.
    s.run_ticks(2);

    let mut api = s.eco_mut().scoped(app).unwrap();

    // set_container_powercap / get_container_powercap / get_container_power
    let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
    api.set_container_demand(c, 1.0).unwrap();
    api.set_container_powercap(c, Watts::new(2.0)).unwrap();
    assert_eq!(api.get_container_powercap(c).unwrap(), Some(Watts::new(2.0)));
    let p = api.get_container_power(c).unwrap();
    assert!(
        (p.watts() - 2.0).abs() < 1e-9,
        "power {p} should sit at the cap"
    );

    // set_battery_charge_rate / set_battery_max_discharge (values are
    // clamped to the virtual bank's physical limits).
    api.set_battery_charge_rate(Watts::new(100.0));
    api.set_battery_max_discharge(Watts::new(50.0));

    // get_solar_power: half of the 60 W array, buffered one tick.
    assert!((api.get_solar_power().watts() - 30.0).abs() < 1e-9);

    // get_grid_carbon reflects the carbon service.
    assert_eq!(api.get_grid_carbon().grams_per_kwh(), 250.0);

    // get_battery_charge_level: 80 % of 720 Wh, plus the excess solar
    // the idle tenant's battery soaked up during the two warm-up ticks.
    let level = api.get_battery_charge_level().watt_hours();
    assert!((576.0..578.0).contains(&level), "level {level}");

    // get_grid_power / get_battery_discharge_rate are flow observations.
    let _ = api.get_grid_power();
    let _ = api.get_battery_discharge_rate();
}

#[test]
fn tick_upcall_period_matches_interval() {
    struct CountTicks(u64);
    impl Application for CountTicks {
        fn on_tick(&mut self, _api: &mut dyn LibraryApi) {
            self.0 += 1;
        }
        fn is_done(&self) -> bool {
            self.0 >= 30
        }
    }
    let mut s = sim();
    s.add_app("ticker", EnergyShare::grid_only(), Box::new(CountTicks(0)))
        .unwrap();
    let executed = s.run_until_done(100);
    assert_eq!(executed, 30, "tick() fires exactly once per interval");
    assert_eq!(s.eco().now().as_secs(), 30 * 60);
}

#[test]
fn solar_is_known_one_tick_ahead() {
    // §3.1: "applications always know the solar power available to them
    // in the next tick interval" — the buffer equals last tick's output.
    let solar = Trace::from_samples(
        vec![0.0, 120.0, 40.0, 0.0],
        ecovisor_suite::simkit::time::SimDuration::from_minutes(1),
    );
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(4))
        .solar(Box::new(TraceSolarSource::new(solar)))
        .build();
    let mut s = Simulation::new(eco);
    let app = s
        .add_app(
            "s",
            EnergyShare::grid_only().with_solar_fraction(1.0),
            Box::new(Idle),
        )
        .unwrap();
    let expect = [0.0, 0.0, 120.0, 40.0]; // buffered with one tick of lag
    for e in expect {
        {
            let api = s.eco_mut().scoped(app).unwrap();
            assert!(
                (api.get_solar_power().watts() - e).abs() < 1e-9,
                "expected buffer {e}, got {}",
                api.get_solar_power()
            );
        }
        s.run_ticks(1);
    }
}
