//! Table 1 conformance: every function of the paper's narrow API exists
//! with the documented semantics, end to end across all crates — and the
//! trait-based compatibility façade is *provably equivalent* to raw
//! protocol batch dispatch: the same call sequence produces identical
//! responses and identical end state through either path.

use ecovisor_suite::carbon_intel::service::TraceCarbonService;
use ecovisor_suite::container_cop::{ContainerSpec, CopConfig};
use ecovisor_suite::ecovisor::proto::{EnergyRequest, EnergyResponse, ProtoError, RequestBatch};
use ecovisor_suite::ecovisor::{
    Application, EcovisorApi, EcovisorBuilder, EcovisorClient, EcovisorError, EnergyClient,
    EnergyShare, LibraryApi, ScopedApi, Simulation,
};
use ecovisor_suite::energy_system::solar::TraceSolarSource;
use ecovisor_suite::simkit::time::SimTime;
use ecovisor_suite::simkit::trace::Trace;
use ecovisor_suite::simkit::units::{WattHours, Watts};

struct Idle;
impl Application for Idle {
    fn on_tick(&mut self, _api: &mut EcovisorClient<'_>) {}
}

fn sim() -> Simulation {
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(8))
        .carbon(Box::new(TraceCarbonService::new(
            "flat",
            Trace::constant(250.0),
        )))
        .solar(Box::new(TraceSolarSource::new(Trace::constant(60.0))))
        .build();
    Simulation::new(eco)
}

#[test]
fn table1_setters_and_getters() {
    let mut s = sim();
    let share = EnergyShare::grid_only()
        .with_solar_fraction(0.5)
        .with_battery(WattHours::new(720.0))
        .with_initial_soc(0.8);
    let app = s.add_app("t1", share, Box::new(Idle)).unwrap();
    // Run two ticks so solar buffers and flows settle.
    s.run_ticks(2);

    let mut api = s.eco_mut().scoped(app).unwrap();

    // set_container_powercap / get_container_powercap / get_container_power
    let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
    api.set_container_demand(c, 1.0).unwrap();
    api.set_container_powercap(c, Watts::new(2.0)).unwrap();
    assert_eq!(
        api.get_container_powercap(c).unwrap(),
        Some(Watts::new(2.0))
    );
    let p = api.get_container_power(c).unwrap();
    assert!(
        (p.watts() - 2.0).abs() < 1e-9,
        "power {p} should sit at the cap"
    );

    // set_battery_charge_rate / set_battery_max_discharge (values are
    // clamped to the virtual bank's physical limits).
    api.set_battery_charge_rate(Watts::new(100.0));
    api.set_battery_max_discharge(Watts::new(50.0));

    // get_solar_power: half of the 60 W array, buffered one tick.
    assert!((api.get_solar_power().watts() - 30.0).abs() < 1e-9);

    // get_grid_carbon reflects the carbon service.
    assert_eq!(api.get_grid_carbon().grams_per_kwh(), 250.0);

    // get_battery_charge_level: 80 % of 720 Wh, plus the excess solar
    // the idle tenant's battery soaked up during the two warm-up ticks.
    let level = api.get_battery_charge_level().watt_hours();
    assert!((576.0..578.0).contains(&level), "level {level}");

    // get_grid_power / get_battery_discharge_rate are flow observations.
    let _ = api.get_grid_power();
    let _ = api.get_battery_discharge_rate();
}

#[test]
fn tick_upcall_period_matches_interval() {
    struct CountTicks(u64);
    impl Application for CountTicks {
        fn on_tick(&mut self, _api: &mut EcovisorClient<'_>) {
            self.0 += 1;
        }
        fn is_done(&self) -> bool {
            self.0 >= 30
        }
    }
    let mut s = sim();
    s.add_app("ticker", EnergyShare::grid_only(), Box::new(CountTicks(0)))
        .unwrap();
    let executed = s.run_until_done(100);
    assert_eq!(executed, 30, "tick() fires exactly once per interval");
    assert_eq!(s.eco().now().as_secs(), 30 * 60);
}

#[test]
fn solar_is_known_one_tick_ahead() {
    // §3.1: "applications always know the solar power available to them
    // in the next tick interval" — the buffer equals last tick's output.
    let solar = Trace::from_samples(
        vec![0.0, 120.0, 40.0, 0.0],
        ecovisor_suite::simkit::time::SimDuration::from_minutes(1),
    );
    let eco = EcovisorBuilder::new()
        .cluster(CopConfig::microserver_cluster(4))
        .solar(Box::new(TraceSolarSource::new(solar)))
        .build();
    let mut s = Simulation::new(eco);
    let app = s
        .add_app(
            "s",
            EnergyShare::grid_only().with_solar_fraction(1.0),
            Box::new(Idle),
        )
        .unwrap();
    let expect = [0.0, 0.0, 120.0, 40.0]; // buffered with one tick of lag
    for e in expect {
        {
            let api = s.eco_mut().scoped(app).unwrap();
            assert!(
                (api.get_solar_power().watts() - e).abs() < 1e-9,
                "expected buffer {e}, got {}",
                api.get_solar_power()
            );
        }
        s.run_ticks(1);
    }
}

// ======================================================================
// Protocol conformance: façade ≡ batch dispatch
// ======================================================================

/// Executes one request through the *trait façade* and wraps the typed
/// result back into a wire response, covering every request shape the
/// sequence below uses.
fn via_facade(api: &mut ScopedApi<'_>, req: &EnergyRequest) -> EnergyResponse {
    fn wrap<T>(r: Result<T, EcovisorError>, f: impl FnOnce(T) -> EnergyResponse) -> EnergyResponse {
        match r {
            Ok(v) => f(v),
            Err(e) => EnergyResponse::Err(ProtoError::from(e)),
        }
    }
    match req {
        EnergyRequest::LaunchContainer { spec } => {
            wrap(api.launch_container(*spec), EnergyResponse::Container)
        }
        EnergyRequest::SetContainerDemand { container, demand } => {
            wrap(api.set_container_demand(*container, *demand), |()| {
                EnergyResponse::Ok
            })
        }
        EnergyRequest::SetContainerPowercap { container, cap } => {
            wrap(api.set_container_powercap(*container, *cap), |()| {
                EnergyResponse::Ok
            })
        }
        EnergyRequest::GetContainerPowercap { container } => wrap(
            api.get_container_powercap(*container),
            EnergyResponse::PowerCap,
        ),
        EnergyRequest::ClearContainerPowercap { container } => {
            wrap(api.clear_container_powercap(*container), |()| {
                EnergyResponse::Ok
            })
        }
        EnergyRequest::GetContainerPower { container } => {
            wrap(api.get_container_power(*container), EnergyResponse::Power)
        }
        EnergyRequest::SuspendContainer { container } => {
            wrap(api.suspend_container(*container), |()| EnergyResponse::Ok)
        }
        EnergyRequest::ResumeContainer { container } => {
            wrap(api.resume_container(*container), |()| EnergyResponse::Ok)
        }
        EnergyRequest::StopContainer { container } => {
            wrap(api.stop_container(*container), |()| EnergyResponse::Ok)
        }
        EnergyRequest::SetBatteryChargeRate { rate } => {
            api.set_battery_charge_rate(*rate);
            EnergyResponse::Ok
        }
        EnergyRequest::SetBatteryMaxDischarge { rate } => {
            api.set_battery_max_discharge(*rate);
            EnergyResponse::Ok
        }
        EnergyRequest::GetSolarPower => EnergyResponse::Power(api.get_solar_power()),
        EnergyRequest::GetGridPower => EnergyResponse::Power(api.get_grid_power()),
        EnergyRequest::GetGridCarbon => EnergyResponse::Intensity(api.get_grid_carbon()),
        EnergyRequest::GetBatteryDischargeRate => {
            EnergyResponse::Power(api.get_battery_discharge_rate())
        }
        EnergyRequest::GetBatteryChargeLevel => {
            EnergyResponse::Energy(api.get_battery_charge_level())
        }
        EnergyRequest::ListContainers => EnergyResponse::Containers(api.container_ids()),
        EnergyRequest::CountRunningContainers => EnergyResponse::Count(api.running_containers()),
        EnergyRequest::GetEffectiveCores => EnergyResponse::Cores(api.effective_cores()),
        EnergyRequest::GetContainerEffectiveCores { container } => wrap(
            api.container_effective_cores(*container),
            EnergyResponse::Cores,
        ),
        EnergyRequest::GetTime => EnergyResponse::Time(api.now()),
        EnergyRequest::GetTickInterval => EnergyResponse::Interval(api.tick_interval()),
        EnergyRequest::GetAppId => EnergyResponse::App(api.app_id()),
        EnergyRequest::GetAppPower => EnergyResponse::Power(api.get_app_power()),
        EnergyRequest::GetAppEnergy { from, to } => {
            EnergyResponse::Energy(api.get_app_energy(*from, *to))
        }
        EnergyRequest::GetAppCarbon => EnergyResponse::Carbon(api.get_app_carbon()),
        EnergyRequest::GetAppCarbonBetween { from, to } => {
            EnergyResponse::Carbon(api.get_app_carbon_between(*from, *to))
        }
        EnergyRequest::GetContainerEnergy {
            container,
            from,
            to,
        } => wrap(
            api.get_container_energy(*container, *from, *to),
            EnergyResponse::Energy,
        ),
        EnergyRequest::GetContainerCarbon {
            container,
            from,
            to,
        } => wrap(
            api.get_container_carbon(*container, *from, *to),
            EnergyResponse::Carbon,
        ),
        EnergyRequest::SetCarbonRate { rate } => {
            api.set_carbon_rate(*rate);
            EnergyResponse::Ok
        }
        EnergyRequest::GetCarbonRateLimit => EnergyResponse::RateLimit(api.carbon_rate_limit()),
        EnergyRequest::SetCarbonBudget { budget } => {
            api.set_carbon_budget(*budget);
            EnergyResponse::Ok
        }
        EnergyRequest::GetCarbonBudget => EnergyResponse::Budget(api.carbon_budget()),
        EnergyRequest::GetRemainingCarbonBudget => {
            EnergyResponse::Budget(api.remaining_carbon_budget())
        }
        // The event surface never belonged to the legacy trait façade —
        // it is a protocol-native addition, conformance-tested between
        // the in-process and remote *clients* in
        // crates/core/tests/protocol_v2.rs. Likewise the snapshot admin
        // surface (crates/core/tests/snapshot_restore.rs) and the
        // observability stats export (crates/core/tests/server_stats.rs).
        EnergyRequest::PollEvents
        | EnergyRequest::SubscribeEvents { .. }
        | EnergyRequest::Snapshot { .. }
        | EnergyRequest::Restore { .. }
        | EnergyRequest::MigrateOut { .. }
        | EnergyRequest::MigrateIn { .. }
        | EnergyRequest::MigrateCommit { .. }
        | EnergyRequest::FedCollect
        | EnergyRequest::FedSettle { .. }
        | EnergyRequest::FedAlign { .. }
        | EnergyRequest::FedCursor
        | EnergyRequest::Stats => {
            unreachable!("admin/event requests are not part of the façade conformance sequence")
        }
    }
}

/// A call sequence touching every corner of the API: container lifecycle,
/// power caps, battery knobs, clock, and Table 2 accounting — including
/// deliberate failures (an unknown container id).
fn conformance_sequence(bogus: ecovisor_suite::container_cop::ContainerId) -> Vec<EnergyRequest> {
    use EnergyRequest::*;
    let from = SimTime::EPOCH;
    let to = SimTime::from_secs(120);
    vec![
        LaunchContainer {
            spec: ContainerSpec::quad_core(),
        },
        ListContainers,
        GetTime,
        GetTickInterval,
        GetAppId,
        GetSolarPower,
        GetGridPower,
        GetGridCarbon,
        GetBatteryDischargeRate,
        GetBatteryChargeLevel,
        GetEffectiveCores,
        CountRunningContainers,
        GetAppPower,
        GetAppCarbon,
        GetAppEnergy { from, to },
        GetAppCarbonBetween { from, to },
        SetBatteryChargeRate {
            rate: Watts::new(80.0),
        },
        SetBatteryMaxDischarge {
            rate: Watts::new(40.0),
        },
        SetCarbonRate { rate: None },
        GetCarbonRateLimit,
        SetCarbonBudget {
            budget: Some(ecovisor_suite::simkit::units::Co2Grams::new(50.0)),
        },
        GetCarbonBudget,
        GetRemainingCarbonBudget,
        // Failures as values: bogus container id.
        GetContainerPower { container: bogus },
        StopContainer { container: bogus },
    ]
}

/// Per-container follow-up once the launched id is known.
fn per_container_sequence(c: ecovisor_suite::container_cop::ContainerId) -> Vec<EnergyRequest> {
    use EnergyRequest::*;
    let from = SimTime::EPOCH;
    let to = SimTime::from_secs(120);
    vec![
        SetContainerDemand {
            container: c,
            demand: 0.75,
        },
        SetContainerPowercap {
            container: c,
            cap: Watts::new(2.5),
        },
        GetContainerPowercap { container: c },
        GetContainerPower { container: c },
        GetContainerEffectiveCores { container: c },
        GetContainerEnergy {
            container: c,
            from,
            to,
        },
        GetContainerCarbon {
            container: c,
            from,
            to,
        },
        ClearContainerPowercap { container: c },
        SuspendContainer { container: c },
        ResumeContainer { container: c },
        // Double-resume is an InvalidState failure — also a value.
        ResumeContainer { container: c },
    ]
}

fn conformance_sim() -> (Simulation, ecovisor_suite::container_cop::AppId) {
    let mut s = sim();
    let share = EnergyShare::grid_only()
        .with_solar_fraction(0.5)
        .with_battery(WattHours::new(720.0))
        .with_initial_soc(0.8);
    let app = s.add_app("conf", share, Box::new(Idle)).unwrap();
    s.run_ticks(2);
    (s, app)
}

/// The tentpole's acceptance property: the same call sequence produces
/// byte-identical responses and identical end state whether it travels
/// through the trait façade or through raw batch dispatch.
#[test]
fn facade_and_batch_dispatch_are_equivalent() {
    let bogus = ecovisor_suite::container_cop::ContainerId::new(999_999);

    // Path A: trait façade, one call at a time.
    let (mut sim_a, app_a) = conformance_sim();
    let mut responses_a = Vec::new();
    {
        let mut api = sim_a.eco_mut().scoped(app_a).unwrap();
        for req in conformance_sequence(bogus) {
            responses_a.push(via_facade(&mut api, &req));
        }
        let c = match &responses_a[0] {
            EnergyResponse::Container(c) => *c,
            other => panic!("launch failed: {other:?}"),
        };
        for req in per_container_sequence(c) {
            responses_a.push(via_facade(&mut api, &req));
        }
    }

    // Path B: raw protocol batches against an identical twin.
    let (mut sim_b, app_b) = conformance_sim();
    let eco = sim_b.eco_mut();
    let first = eco.dispatch_batch(&RequestBatch::new(app_b, conformance_sequence(bogus)));
    let c = match &first.responses[0] {
        EnergyResponse::Container(c) => *c,
        other => panic!("launch failed: {other:?}"),
    };
    let second = eco.dispatch_batch(&RequestBatch::new(app_b, per_container_sequence(c)));
    let responses_b: Vec<EnergyResponse> = first
        .responses
        .into_iter()
        .chain(second.responses)
        .collect();

    assert_eq!(responses_a.len(), responses_b.len());
    for (i, (a, b)) in responses_a.iter().zip(&responses_b).enumerate() {
        assert_eq!(a, b, "call #{i} diverged between façade and dispatch");
    }

    // And the two ecovisors evolved identically: run on and compare state.
    sim_a.run_ticks(5);
    sim_b.run_ticks(5);
    assert_eq!(
        sim_a.eco().app_totals(app_a).unwrap(),
        sim_b.eco().app_totals(app_b).unwrap()
    );
    assert_eq!(
        sim_a.eco().app_flows(app_a).unwrap(),
        sim_b.eco().app_flows(app_b).unwrap()
    );
}

/// Serialized round-trip does not change dispatch results: a batch that
/// crosses the JSON wire behaves exactly like the in-memory one.
#[test]
fn wire_serialized_batch_dispatches_identically() {
    let bogus = ecovisor_suite::container_cop::ContainerId::new(999_999);
    let (mut sim_a, app) = conformance_sim();
    let batch = RequestBatch::new(app, conformance_sequence(bogus));

    let wire = serde::json::to_string(&batch);
    let parsed: RequestBatch = serde::json::from_str(&wire).expect("parse");
    assert_eq!(parsed, batch);

    let (mut sim_b, app_b) = conformance_sim();
    let direct = sim_a.eco_mut().dispatch_batch(&batch);
    let via_wire = sim_b
        .eco_mut()
        .dispatch_batch(&RequestBatch::new(app_b, parsed.requests));
    assert_eq!(direct.responses, via_wire.responses);
}

// ======================================================================
// Cross-tenant scoping: denials are values, not panics
// ======================================================================

/// Two registered apps; app B addressing app A's container gets a
/// `Scope` error *value* on every container-addressed request, through
/// both the raw protocol and the client/trait surfaces, and app A's
/// state is untouched.
#[test]
fn cross_tenant_requests_denied_as_values() {
    let mut s = sim();
    let a = s
        .add_app("tenant-a", EnergyShare::grid_only(), Box::new(Idle))
        .unwrap();
    let b = s
        .add_app("tenant-b", EnergyShare::grid_only(), Box::new(Idle))
        .unwrap();

    // App A launches a container and sets a demand.
    let victim = {
        let mut api = s.eco_mut().client(a).unwrap();
        let c = api.launch_container(ContainerSpec::quad_core()).unwrap();
        api.set_container_demand(c, 1.0).unwrap();
        c
    };

    // Raw protocol: every container-addressed request from B is denied
    // with a Scope error value; the batch keeps going (no abort).
    use EnergyRequest::*;
    let hostile = vec![
        SetContainerPowercap {
            container: victim,
            cap: Watts::new(0.0),
        },
        ClearContainerPowercap { container: victim },
        GetContainerPowercap { container: victim },
        GetContainerPower { container: victim },
        StopContainer { container: victim },
        SuspendContainer { container: victim },
        ResumeContainer { container: victim },
        SetContainerDemand {
            container: victim,
            demand: 0.0,
        },
        GetContainerEffectiveCores { container: victim },
        GetContainerEnergy {
            container: victim,
            from: SimTime::EPOCH,
            to: SimTime::from_secs(60),
        },
        GetContainerCarbon {
            container: victim,
            from: SimTime::EPOCH,
            to: SimTime::from_secs(60),
        },
        // A request of B's own still succeeds after all those denials.
        ListContainers,
    ];
    let n_hostile = hostile.len();
    let out = s.eco_mut().dispatch_batch(&RequestBatch::new(b, hostile));
    assert_eq!(out.responses.len(), n_hostile);
    for resp in &out.responses[..n_hostile - 1] {
        assert_eq!(
            resp,
            &EnergyResponse::Err(ProtoError::Scope {
                container: victim,
                app: b
            }),
            "cross-tenant request must be denied as a Scope value"
        );
    }
    assert_eq!(
        out.responses[n_hostile - 1],
        EnergyResponse::Containers(vec![])
    );

    // Client handle: the denial surfaces as the classic NotOwner error.
    {
        let mut api = s.eco_mut().client(b).unwrap();
        let err = api.stop_container(victim).unwrap_err();
        assert!(matches!(err, EcovisorError::NotOwner { container, app }
            if container == victim && app == b));
    }

    // Trait façade: same.
    {
        let mut api = s.eco_mut().scoped(b).unwrap();
        let err = api
            .set_container_powercap(victim, Watts::new(0.0))
            .unwrap_err();
        assert!(matches!(err, EcovisorError::NotOwner { .. }));
    }

    // App A's container survived the assault untouched.
    let mut api = s.eco_mut().client(a).unwrap();
    assert_eq!(api.container_ids(), vec![victim]);
    assert_eq!(api.get_container_powercap(victim).unwrap(), None);
}
