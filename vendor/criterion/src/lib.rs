//! Offline shim of the `criterion` benchmark harness.
//!
//! Exposes the macro/API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`] — with simple wall-clock measurement instead of
//! criterion's statistical machinery. Each benchmark runs a short warm-up
//! then measures enough iterations to fill the measurement budget, and
//! prints mean ns/iter to stdout.
//!
//! ## Smoke mode
//!
//! Setting `CRITERION_SMOKE=1` in the environment zeroes the warm-up and
//! measurement budgets, so every benchmark executes exactly one
//! iteration. CI runs the whole bench suite this way to catch bit-rot
//! (a bench that no longer compiles or panics) without paying for real
//! measurements; the printed timings are meaningless in this mode.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id from just a parameter (group name supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        if smoke_mode() {
            return Self {
                warm_up: Duration::ZERO,
                measurement: Duration::ZERO,
                sample_size: 1,
            };
        }
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

/// `true` when `CRITERION_SMOKE=1`: run each bench for a single
/// iteration (CI bit-rot check), not a real measurement.
fn smoke_mode() -> bool {
    std::env::var("CRITERION_SMOKE").is_ok_and(|v| v == "1")
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.settings, &mut f);
        self
    }

    /// Opens a named group with its own settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (compatibility; used as an upper
    /// bound on measured iterations). Ignored in smoke mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !smoke_mode() {
            self.settings.sample_size = n;
        }
        self
    }

    /// Sets the warm-up duration. Ignored in smoke mode.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !smoke_mode() {
            self.settings.warm_up = d;
        }
        self
    }

    /// Sets the measurement budget. Ignored in smoke mode.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !smoke_mode() {
            self.settings.measurement = d;
        }
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.settings, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.settings, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

fn run_one(name: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        settings,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.total.as_nanos() as f64 / b.iters as f64
    } else {
        f64::NAN
    };
    println!(
        "bench: {name:<48} {per_iter:>14.1} ns/iter ({} iters)",
        b.iters
    );
}

/// Measures closures; handed to each benchmark function.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures a closure: warm-up, then fill the measurement budget.
    ///
    /// Iterations run in calibrated chunks (`sample_size` chunks per
    /// budget) so the timer is consulted once per chunk, not once per
    /// iteration — sub-microsecond routines are not swamped by
    /// `Instant` overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, until the warm-up budget elapses;
        // doubles as calibration for the chunk size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.settings.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.settings.measurement;
        let samples = self.settings.sample_size.max(1) as f64;
        let chunk = ((budget.as_secs_f64() / samples / per_iter.max(1e-12)).ceil() as u64).max(1);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            for _ in 0..chunk {
                black_box(routine());
            }
            iters += chunk;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Measures a closure over inputs built by `setup` (setup excluded
    /// from timing). Per-iteration timing is inherent here, so this
    /// suits routines well above timer resolution.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = setup();
        black_box(routine(warm));
        let budget = self.settings.measurement;
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while iters == 0 || wall.elapsed() < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
