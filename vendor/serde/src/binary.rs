//! Compact binary wire codec for [`Value`].
//!
//! The JSON codec ([`crate::json`]) is self-describing but pays for it:
//! floats render through shortest-round-trip formatting and parse back
//! through `str::parse`, strings are escaped, and every number is
//! re-tokenized byte by byte. This codec encodes the *same* [`Value`]
//! data model — so anything that serializes also binary-encodes, with no
//! second wire schema — in a length-delimited tag-byte format:
//!
//! | tag  | variant        | payload                                    |
//! |------|----------------|--------------------------------------------|
//! | 0x00 | `Null`         | —                                          |
//! | 0x01 | `Bool(false)`  | —                                          |
//! | 0x02 | `Bool(true)`   | —                                          |
//! | 0x03 | `Int`          | zigzag LEB128 varint                       |
//! | 0x04 | `UInt`         | LEB128 varint                              |
//! | 0x05 | `Float`        | 8 bytes, f64 little-endian bit pattern     |
//! | 0x06 | `Str`          | varint byte length + UTF-8 bytes           |
//! | 0x07 | `Seq`          | varint element count + encoded elements    |
//! | 0x08 | `Map`          | varint entry count + (key, value) pairs; a |
//! |      |                | key is varint byte length + UTF-8 bytes    |
//!
//! Non-finite floats need no special casing: the f64 bit pattern
//! round-trips NaN and ±inf exactly. Like the JSON parser, the decoder
//! treats hostile input as data, not a crash: nesting is bounded by
//! [`MAX_DEPTH`], truncated or over-long payloads are error values, and
//! claimed collection sizes never pre-allocate more than the remaining
//! input could hold.
//!
//! A worked byte-level example of a full protocol batch in this format
//! lives in the ecovisor repo's `docs/PROTOCOL.md` (§5.2).
//!
//! ## Example
//!
//! ```
//! use serde::Value;
//!
//! // Derived types round-trip through the same Value tree both codecs
//! // share; here we encode a Value directly to see the bytes.
//! let v = Value::Map(vec![("power".into(), Value::Float(80.0))]);
//! let mut bytes = Vec::new();
//! serde::binary::encode(&v, &mut bytes);
//! assert_eq!(
//!     bytes,
//!     [
//!         0x08, 0x01,                          // Map, 1 entry
//!         0x05, b'p', b'o', b'w', b'e', b'r',  // key: varint len 5 + UTF-8
//!         0x05,                                // Float tag
//!         0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x54, 0x40, // 80.0 as LE f64
//!     ]
//! );
//! assert_eq!(serde::binary::decode(&bytes).unwrap(), v);
//!
//! // Or end to end through any Serialize/Deserialize type (integers
//! // travel as zigzag varints: 1 → 2, 128 → 256 → bytes 0x80 0x02):
//! let wire = serde::binary::to_bytes(&vec![1u64, 128]);
//! assert_eq!(wire, [0x07, 0x02, 0x03, 0x02, 0x03, 0x80, 0x02]);
//! let back: Vec<u64> = serde::binary::from_bytes(&wire).unwrap();
//! assert_eq!(back, [1, 128]);
//! ```

use crate::{Deserialize, Error, Serialize, Value};

/// Maximum container nesting accepted by the decoder (mirrors the JSON
/// parser's bound, so both wire codecs fail hostile nesting identically).
pub const MAX_DEPTH: u32 = 128;

/// Serializes any value to its binary wire form.
pub fn to_bytes<T: Serialize + ?Sized>(t: &T) -> Vec<u8> {
    let mut out = Vec::new();
    encode(&t.to_value(), &mut out);
    out
}

/// Parses a value from its binary wire form.
///
/// # Errors
///
/// On malformed input, trailing bytes, or a tree that does not match `T`.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    T::from_value(&decode(bytes)?)
}

/// Appends the binary encoding of a [`Value`] tree to `out`.
pub fn encode(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Bool(false) => out.push(0x01),
        Value::Bool(true) => out.push(0x02),
        Value::Int(i) => {
            out.push(0x03);
            write_varint(zigzag(*i), out);
        }
        Value::UInt(u) => {
            out.push(0x04);
            write_varint(*u, out);
        }
        Value::Float(f) => {
            out.push(0x05);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x06);
            write_bytes(s.as_bytes(), out);
        }
        Value::Seq(items) => {
            out.push(0x07);
            write_varint(items.len() as u64, out);
            for item in items {
                encode(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(0x08);
            write_varint(entries.len() as u64, out);
            for (k, item) in entries {
                write_bytes(k.as_bytes(), out);
                encode(item, out);
            }
        }
    }
}

/// Decodes a [`Value`] tree from its binary encoding.
///
/// # Errors
///
/// On an unknown tag, truncated input, invalid UTF-8, nesting deeper than
/// [`MAX_DEPTH`], or trailing bytes after the root value.
pub fn decode(bytes: &[u8]) -> Result<Value, Error> {
    let mut pos = 0;
    let v = decode_value(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn decode_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::custom("nesting deeper than MAX_DEPTH"));
    }
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| Error::custom("unexpected end of input"))?;
    *pos += 1;
    match tag {
        0x00 => Ok(Value::Null),
        0x01 => Ok(Value::Bool(false)),
        0x02 => Ok(Value::Bool(true)),
        0x03 => Ok(Value::Int(unzigzag(read_varint(bytes, pos)?))),
        0x04 => Ok(Value::UInt(read_varint(bytes, pos)?)),
        0x05 => {
            let raw = bytes
                .get(*pos..*pos + 8)
                .ok_or_else(|| Error::custom("truncated float"))?;
            *pos += 8;
            Ok(Value::Float(f64::from_le_bytes(
                raw.try_into().expect("8-byte slice"),
            )))
        }
        0x06 => Ok(Value::Str(read_string(bytes, pos)?)),
        0x07 => {
            let count = read_count(bytes, pos)?;
            let mut items = Vec::with_capacity(count.min(bytes.len() - *pos + 1));
            for _ in 0..count {
                items.push(decode_value(bytes, pos, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        0x08 => {
            let count = read_count(bytes, pos)?;
            let mut entries = Vec::with_capacity(count.min(bytes.len() - *pos + 1));
            for _ in 0..count {
                let key = read_string(bytes, pos)?;
                let value = decode_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
            }
            Ok(Value::Map(entries))
        }
        other => Err(Error::custom(format!(
            "unknown tag byte 0x{other:02x} at {}",
            *pos - 1
        ))),
    }
}

// ----------------------------------------------------------------------
// Primitives
// ----------------------------------------------------------------------

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, Error> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| Error::custom("truncated varint"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(Error::custom("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::custom("varint longer than 10 bytes"));
        }
    }
}

fn write_bytes(b: &[u8], out: &mut Vec<u8>) {
    write_varint(b.len() as u64, out);
    out.extend_from_slice(b);
}

/// Reads a collection count, rejecting counts that could not possibly fit
/// in the remaining input (each element costs at least one byte).
fn read_count(bytes: &[u8], pos: &mut usize) -> Result<usize, Error> {
    let count = read_varint(bytes, pos)?;
    let remaining = (bytes.len() - *pos) as u64;
    if count > remaining {
        return Err(Error::custom(format!(
            "claimed count {count} exceeds remaining {remaining} bytes"
        )));
    }
    Ok(count as usize)
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    let len = read_varint(bytes, pos)?;
    // Bounds-check against the remaining input *before* any usize
    // arithmetic: a hostile length near u64::MAX must be an error value,
    // not an overflow panic (and must never truncate on 32-bit).
    let remaining = (bytes.len() - *pos) as u64;
    if len > remaining {
        return Err(Error::custom("truncated string"));
    }
    let len = len as usize;
    let raw = &bytes[*pos..*pos + len];
    *pos += len;
    String::from_utf8(raw.to_vec()).map_err(|_| Error::custom("invalid utf-8 in string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let mut out = Vec::new();
        encode(v, &mut out);
        assert_eq!(&decode(&out).expect("decodes"), v, "bytes {out:?}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::UInt(u64::MAX),
            Value::Float(0.1 + 0.2),
            Value::Str(String::new()),
            Value::Str("héllo \"wire\"\n".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn non_finite_floats_round_trip_natively() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            let wire = to_bytes(&f);
            let back: f64 = from_bytes(&wire).expect("decodes");
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {wire:?} -> {back}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        round_trip(&Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![
                    Value::Int(1),
                    Value::Map(vec![("b".into(), Value::Str("x\n".into()))]),
                ]),
            ),
            ("c".into(), Value::Null),
        ]));
        round_trip(&Value::Seq(vec![]));
        round_trip(&Value::Map(vec![]));
    }

    #[test]
    fn varints_use_minimal_space() {
        let mut out = Vec::new();
        encode(&Value::UInt(0x7f), &mut out);
        assert_eq!(out.len(), 2, "tag + 1 varint byte");
        out.clear();
        encode(&Value::UInt(0x80), &mut out);
        assert_eq!(out.len(), 3, "tag + 2 varint bytes");
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut out = Vec::new();
        encode(&Value::Str("hello".into()), &mut out);
        for cut in 0..out.len() {
            assert!(decode(&out[..cut]).is_err(), "cut at {cut}");
        }
        let mut float = Vec::new();
        encode(&Value::Float(1.5), &mut float);
        assert!(decode(&float[..5]).is_err());
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut out = Vec::new();
        encode(&Value::Null, &mut out);
        out.push(0x00);
        assert!(decode(&out).is_err());
    }

    #[test]
    fn unknown_tags_and_bad_utf8_are_errors() {
        assert!(decode(&[0xff]).is_err());
        // Str of length 1 whose byte is not valid UTF-8.
        assert!(decode(&[0x06, 0x01, 0xff]).is_err());
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // A Seq-of-one chain deeper than MAX_DEPTH.
        let mut bomb = Vec::new();
        for _ in 0..(1 << 16) {
            bomb.extend_from_slice(&[0x07, 0x01]);
        }
        bomb.push(0x00);
        assert!(decode(&bomb).is_err());
        // Normal nesting stays accepted.
        let mut ok = Vec::new();
        for _ in 0..64 {
            ok.extend_from_slice(&[0x07, 0x01]);
        }
        ok.push(0x00);
        assert!(decode(&ok).is_ok());
    }

    #[test]
    fn hostile_string_lengths_are_errors_not_overflows() {
        // Str tag + varint length u64::MAX with no payload behind it:
        // must come back as an error value, not an arithmetic panic.
        let mut bytes = vec![0x06];
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(decode(&bytes).is_err());
        // Same attack through a map key.
        let mut map = vec![0x08, 0x01];
        map.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(decode(&map).is_err());
    }

    #[test]
    fn hostile_counts_do_not_preallocate() {
        // Claims u64::MAX elements with no payload behind it.
        let mut bytes = vec![0x07];
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn overlong_varints_are_errors() {
        // 11 continuation bytes.
        let bytes = [
            0x04, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
        ];
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn zigzag_is_an_involution() {
        for i in [0, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }
}
