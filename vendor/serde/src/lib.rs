//! Offline shim of the serde data model.
//!
//! The build runs without network access, so the real `serde` crate is
//! unavailable. This shim keeps the surface the workspace uses —
//! `use serde::{Serialize, Deserialize}` plus `#[derive(...)]` — while
//! implementing a deliberately small framework:
//!
//! * [`Value`] is a self-describing tree (the serde data model collapsed
//!   to the variants this workspace needs).
//! * [`Serialize`]/[`Deserialize`] convert to/from [`Value`].
//! * [`json`] renders a [`Value`] to a JSON string and parses it back —
//!   the ecovisor protocol's readable wire format.
//! * [`binary`] encodes the same [`Value`] tree in a compact tag-byte +
//!   varint format — the protocol's fast wire format, negotiated per
//!   connection by the transport layer.
//!
//! Derive semantics mirror serde's defaults: structs become maps keyed by
//! field name, newtype structs are transparent, enums are externally
//! tagged (`"Variant"` for unit variants, `{"Variant": payload}`
//! otherwise).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod binary;
pub mod json;

/// A self-describing serialized tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------------------------
// Helpers used by the derive-generated code (stable names, public API).
// ----------------------------------------------------------------------

/// Fetches a struct field from a map value.
///
/// # Errors
///
/// When `v` is not a map or lacks `name`.
pub fn __field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(_) => v
            .get(name)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
        other => Err(Error::custom(format!(
            "expected map for struct, found {other:?}"
        ))),
    }
}

/// Splits an externally-tagged enum value into `(tag, payload)`.
///
/// # Errors
///
/// When `v` is neither a string nor a single-entry map.
pub fn __variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(tag) => Ok((tag.as_str(), None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(Error::custom(format!(
            "expected externally tagged enum, found {other:?}"
        ))),
    }
}

/// Checks a sequence value's arity and returns its elements.
///
/// # Errors
///
/// When `v` is not a sequence of exactly `expect` elements.
pub fn __seq(v: &Value, expect: usize) -> Result<&[Value], Error> {
    match v {
        Value::Seq(items) if items.len() == expect => Ok(items),
        Value::Seq(items) => Err(Error::custom(format!(
            "expected {expect} elements, found {}",
            items.len()
        ))),
        other => Err(Error::custom(format!("expected seq, found {other:?}"))),
    }
}

/// Accepts the unit encoding (`null`).
///
/// # Errors
///
/// When `v` is not null.
pub fn __unit(v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => Ok(()),
        other => Err(Error::custom(format!("expected null, found {other:?}"))),
    }
}

// ----------------------------------------------------------------------
// Primitive impls
// ----------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

fn int_from_value(v: &Value) -> Result<i128, Error> {
    match v {
        Value::Int(i) => Ok(i128::from(*i)),
        Value::UInt(u) => Ok(i128::from(*u)),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Ok(*f as i128),
        other => Err(Error::custom(format!("expected integer, found {other:?}"))),
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                <$t>::try_from(int_from_value(v)?)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                <$t>::try_from(int_from_value(v)?)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        usize::try_from(int_from_value(v)?)
            .map_err(|_| Error::custom("integer out of range for usize"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        isize::try_from(int_from_value(v)?)
            .map_err(|_| Error::custom("integer out of range for isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // The JSON codec's encoding of non-finite floats (JSON itself
            // has none), so NaN/inf fields round-trip the wire.
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        __unit(v)
    }
}

// ----------------------------------------------------------------------
// Composite impls
// ----------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected seq, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let kv = __seq(pair, 2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(Error::custom(format!("expected map seq, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),*) => {
        impl<$($t: Serialize),*> Serialize for ($($t,)*) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),*])
            }
        }
        impl<$($t: Deserialize),*> Deserialize for ($($t,)*) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = __seq(v, $n)?;
                Ok(($($t::from_value(&items[$idx])?,)*))
            }
        }
    };
}
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn map_round_trips_as_pair_seq() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        let back: BTreeMap<String, u32> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Map(vec![("x".into(), Value::Int(1))]);
        assert!(__field(&v, "y").is_err());
        assert!(__field(&v, "x").is_ok());
    }
}
