//! JSON wire codec for [`Value`].
//!
//! This is the concrete byte format of the ecovisor protocol: every
//! [`Serialize`] type renders to a JSON string via
//! [`to_string`] and parses back via [`from_str`]. Integers keep full
//! `u64`/`i64` precision; floats are rendered with Rust's shortest
//! round-trip formatting. JSON has no encoding for non-finite floats, so
//! they render as the strings `"NaN"`/`"inf"`/`"-inf"`, which the float
//! deserializer accepts back — a request carrying a NaN field dispatches
//! identically on both sides of the wire instead of failing to parse.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes any value to its JSON wire form.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> String {
    let mut out = String::new();
    write_value(&t.to_value(), &mut out);
    out
}

/// Parses a value from its JSON wire form.
///
/// # Errors
///
/// On malformed JSON or a tree that does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Maximum container nesting accepted by the parser. The wire protocol
/// nests a handful of levels; the bound exists so hostile input (e.g.
/// `"[".repeat(1 << 20)`) returns an error value instead of overflowing
/// the stack — the protocol's failures-are-values promise extends to
/// the codec.
pub const MAX_DEPTH: u32 = 128;

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// On malformed JSON, or nesting deeper than [`MAX_DEPTH`] levels.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; ensure a
                // decimal point or exponent so it reparses as a float.
                let s = format!("{f:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else if f.is_nan() {
                out.push_str("\"NaN\"");
            } else if *f > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::custom("nesting deeper than MAX_DEPTH"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => {
            expect_literal(bytes, pos, "null")?;
            Ok(Value::Null)
        }
        Some(b't') => {
            expect_literal(bytes, pos, "true")?;
            Ok(Value::Bool(true))
        }
        Some(b'f') => {
            expect_literal(bytes, pos, "false")?;
            Ok(Value::Bool(false))
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::custom(format!("expected ',' or ']' at {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected ':' at {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::custom(format!("expected ',' or '}}' at {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::custom(format!("expected `{lit}` at {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        // Surrogate pairs are not needed for this workspace's
                        // wire traffic; map lone surrogates to the
                        // replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected number at {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&to_string_value(&v)).unwrap(), v);
        }
    }

    fn to_string_value(v: &Value) -> String {
        let mut out = String::new();
        write_value(v, &mut out);
        out
    }

    #[test]
    fn u64_precision_survives() {
        let v = Value::UInt(u64::MAX);
        assert_eq!(parse(&to_string_value(&v)).unwrap(), Value::UInt(u64::MAX));
    }

    #[test]
    fn float_shortest_form_round_trips() {
        let v = Value::Float(0.1 + 0.2);
        assert_eq!(parse(&to_string_value(&v)).unwrap(), v);
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2,{"b":"x\n"}],"c":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string_value(&v), text);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(1 << 20);
        assert!(parse(&bomb).is_err());
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok(), "normal nesting stays accepted");
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let wire = crate::json::to_string(&f);
            let back: f64 = crate::json::from_str(&wire).unwrap();
            assert!(
                back.is_nan() == f.is_nan() && (f.is_nan() || back == f),
                "{f} -> {wire} -> {back}"
            );
        }
    }
}
