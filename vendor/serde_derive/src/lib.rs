//! Dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored serde shim.
//!
//! The build is offline, so `syn`/`quote` are unavailable; this macro
//! parses the item's token stream by hand. It supports the shapes the
//! workspace uses — unit structs, tuple structs, named-field structs, and
//! enums with unit / tuple / named-field variants — and rejects generics
//! with a clear compile error. Generated code mirrors serde's default
//! encodings (struct → map, newtype → transparent, enum → externally
//! tagged).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated code parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (type `{name}`)");
    }

    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // [ ... ]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` body; types are skipped (the generated code
/// lets inference pick the right `Deserialize` impl).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        names.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    names
}

/// Advances past one type: everything up to a `,` at angle-bracket depth
/// zero. Grouped tokens (`(..)`, `[..]`) arrive as single trees, so only
/// `<`/`>` need depth tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ----------------------------------------------------------------------
// Codegen
// ----------------------------------------------------------------------

fn named_map_expr(fields: &[String], accessor: &dyn Fn(&str) -> String) -> String {
    let mut code = String::from(
        "{ let mut __m: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields {
        code.push_str(&format!(
            "__m.push((::std::string::String::from(\"{f}\"), \
             serde::Serialize::to_value({})));",
            accessor(f)
        ));
    }
    code.push_str("serde::Value::Map(__m) }");
    code
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(","))
                }
                Fields::Named(fields) => named_map_expr(fields, &|f| format!("&self.{f}")),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Map(vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),",
                            binds.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let payload = named_map_expr(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Map(vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),",
                            fields.join(",")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{ \
         fn to_value(&self) -> serde::Value {{ {body} }} }}"
    )
}

fn named_build_expr(prefix: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: serde::Deserialize::from_value(serde::__field({src}, \"{f}\")?)?"))
        .collect();
    format!("{prefix} {{ {} }}", inits.join(","))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ serde::__unit(__v)?; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __s = serde::__seq(__v, {n})?; Ok({name}({})) }}",
                        items.join(",")
                    )
                }
                Fields::Named(fields) => {
                    format!("Ok({})", named_build_expr(name, fields, "__v"))
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    Fields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("Ok({name}::{vn}(serde::Deserialize::from_value(__p)?))")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __s = serde::__seq(__p, {n})?; \
                                 Ok({name}::{vn}({})) }}",
                                items.join(",")
                            )
                        };
                        arms.push_str(&format!(
                            "\"{vn}\" => {{ let __p = __payload.ok_or_else(|| \
                             serde::Error::custom(\"variant `{vn}` expects a payload\"))?; \
                             {build} }}"
                        ));
                    }
                    Fields::Named(fields) => {
                        let build = named_build_expr(&format!("{name}::{vn}"), fields, "__p");
                        arms.push_str(&format!(
                            "\"{vn}\" => {{ let __p = __payload.ok_or_else(|| \
                             serde::Error::custom(\"variant `{vn}` expects a payload\"))?; \
                             Ok({build}) }}"
                        ));
                    }
                }
            }
            let body = format!(
                "{{ let (__tag, __payload) = serde::__variant(__v)?; \
                 match __tag {{ {arms} __other => Err(serde::Error::custom(format!(\
                 \"unknown variant `{{}}` for {name}\", __other))) }} }}"
            );
            (name, body)
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{ \
         fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error> \
         {{ {body} }} }}"
    )
}
