//! A minimal readiness reactor: the subset of mio the workspace needs,
//! reimplemented over raw `epoll(7)` so the build stays fully offline
//! (see `vendor/README.md`).
//!
//! The surface is deliberately tiny and mio-shaped:
//!
//! * [`Poll`] — an epoll instance; register sources with a [`Token`] and
//!   an [`Interest`], then [`Poll::poll`] for batches of [`Event`]s;
//! * [`Events`] — a reusable buffer of readiness events;
//! * [`Waker`] — an `eventfd(2)` registered on the poll, for waking a
//!   thread parked in [`Poll::poll`] from anywhere (shutdown, "this
//!   connection now has queued writes", …).
//!
//! Registrations are **level-triggered**: a source keeps reporting ready
//! until the condition is consumed (reads drained to `WouldBlock`,
//! writes flushed). That is the forgiving mode — a callback that does
//! not finish the job is re-told on the next poll, never stuck.
//!
//! Only Linux is supported; the container images this workspace builds
//! in are Linux, and pretending to carry an untested `poll(2)` fallback
//! would be worse than saying so.

#![warn(missing_docs)]

#[cfg(not(target_os = "linux"))]
compile_error!(
    "the vendored reactor shim is epoll-only; building on a non-Linux \
     target requires porting vendor/reactor to that platform's poller"
);

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Raw epoll / eventfd bindings
// ---------------------------------------------------------------------
//
// No libc crate in an offline build: these resolve against the C
// library std already links. Constants are the Linux UAPI values.

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`. On x86 the kernel declares it packed; other
/// architectures use natural layout — mirroring glibc's declaration.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

/// Converts a raw syscall return into an [`io::Result`].
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

/// Caller-chosen identifier attached to a registration; every readiness
/// [`Event`] for that source carries it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// The readiness classes a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Readable readiness only.
    pub const READABLE: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable readiness only.
    pub const WRITABLE: Interest = Interest {
        read: false,
        write: true,
    };

    /// Combines two interests.
    #[must_use]
    pub fn union(self, other: Interest) -> Interest {
        Interest {
            read: self.read || other.read,
            write: self.write || other.write,
        }
    }

    /// `true` when readable readiness is included.
    pub fn is_readable(self) -> bool {
        self.read
    }

    /// `true` when writable readiness is included.
    pub fn is_writable(self) -> bool {
        self.write
    }

    fn epoll_bits(self) -> u32 {
        // RDHUP is always requested: a half-closed peer surfaces as a
        // readable event whose read returns 0, same as mio.
        let mut bits = EPOLLRDHUP;
        if self.read {
            bits |= EPOLLIN;
        }
        if self.write {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification for a registered source.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable — including error/hang-up conditions, which a caller
    /// observes by reading (EOF or the pending socket error).
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Writable readiness.
    pub fn is_writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }

    /// The source is in an error or hang-up state.
    pub fn is_error(&self) -> bool {
        self.bits & (EPOLLERR | EPOLLHUP) != 0
    }
}

/// A reusable buffer [`Poll::poll`] fills with readiness events.
#[derive(Debug)]
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let events = self.events;
        let data = self.data;
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.clamp(1, c_int::MAX as usize)],
            len: 0,
        }
    }

    /// Iterates the events of the last [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| Event {
            token: Token(raw.data as usize),
            bits: raw.events,
        })
    }

    /// `true` when the last poll returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance: register sources, then wait for readiness.
#[derive(Debug)]
pub struct Poll {
    ep: OwnedFd,
}

impl Poll {
    /// Creates a fresh epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1(2)` failure.
    pub fn new() -> io::Result<Poll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we exclusively own.
        Ok(Poll {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.epoll_bits(),
            data: token.0 as u64,
        };
        cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers a source for level-triggered readiness under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl(2)` failure (e.g. the fd is already
    /// registered).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), token, interest)
    }

    /// Changes an existing registration's token or interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl(2)` failure (e.g. the fd was never
    /// registered).
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), token, interest)
    }

    /// Removes a source's registration. Dropping (closing) a registered
    /// fd also removes it implicitly; explicit deregistration exists for
    /// sources that outlive their interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl(2)` failure.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe {
            epoll_ctl(
                self.ep.as_raw_fd(),
                EPOLL_CTL_DEL,
                source.as_raw_fd(),
                &mut ev,
            )
        })
        .map(|_| ())
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// elapses (`events` comes back empty), or a [`Waker`] fires. A
    /// signal interruption is treated as an empty poll, not an error.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait(2)` failure.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => c_int::try_from(d.as_millis())
                .unwrap_or(c_int::MAX)
                // A sub-millisecond timeout must still time out, not
                // busy-spin as 0 nor block forever.
                .max(if d.is_zero() { 0 } else { 1 }),
        };
        events.len = 0;
        let n = unsafe {
            epoll_wait(
                self.ep.as_raw_fd(),
                events.raw.as_mut_ptr(),
                events.raw.len() as c_int,
                timeout_ms,
            )
        };
        match cvt(n) {
            Ok(n) => {
                events.len = n as usize;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Wakes a thread parked in [`Poll::poll`] from any other thread: an
/// `eventfd(2)` registered on the poll. Cheap to clone; waking an
/// already-pending waker is idempotent (the counter accumulates).
///
/// The owning reactor must call [`Waker::drain`] when it sees the
/// waker's token, or — the registration being level-triggered — every
/// subsequent poll returns immediately.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: Arc<File>,
}

impl Waker {
    /// Creates an eventfd and registers it on `poll` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd(2)` / registration failure.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd we exclusively own.
        let file = unsafe { File::from_raw_fd(fd) };
        poll.register(&file, token, Interest::READABLE)?;
        Ok(Waker { fd: Arc::new(file) })
    }

    /// Makes the next (or current) [`Poll::poll`] return immediately.
    ///
    /// # Errors
    ///
    /// Propagates the eventfd write failure; a counter already at its
    /// ceiling (`WouldBlock`) counts as woken.
    pub fn wake(&self) -> io::Result<()> {
        match (&*self.fd).write_all(&1u64.to_ne_bytes()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wake-ups, so the level-triggered registration
    /// goes quiet until the next [`wake`](Self::wake).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // One read resets an eventfd counter to zero.
        let _ = (&*self.fd).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn poll_once(poll: &Poll, events: &mut Events, timeout_ms: u64) {
        poll.poll(events, Some(Duration::from_millis(timeout_ms)))
            .expect("poll");
    }

    #[test]
    fn readable_event_fires_on_incoming_data() {
        let poll = Poll::new().expect("poll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        poll.register(&listener, Token(1), Interest::READABLE)
            .expect("register listener");

        let mut events = Events::with_capacity(8);
        poll_once(&poll, &mut events, 0);
        assert!(events.is_empty(), "no connection yet");

        let mut client = TcpStream::connect(addr).expect("connect");
        poll_once(&poll, &mut events, 2_000);
        assert!(events
            .iter()
            .any(|e| e.token() == Token(1) && e.is_readable()));

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poll.register(&server_side, Token(2), Interest::READABLE)
            .expect("register conn");
        client.write_all(b"ping").expect("write");
        poll_once(&poll, &mut events, 2_000);
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_readable()));
    }

    #[test]
    fn level_triggered_readiness_persists_until_consumed() {
        let poll = Poll::new().expect("poll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poll.register(&server_side, Token(7), Interest::READABLE)
            .expect("register");
        client.write_all(b"x").expect("write");

        let mut events = Events::with_capacity(8);
        for _ in 0..2 {
            poll_once(&poll, &mut events, 2_000);
            assert!(
                events.iter().any(|e| e.token() == Token(7)),
                "unconsumed data must keep reporting readable"
            );
        }
        let mut buf = [0u8; 8];
        let n = server_side.read(&mut buf).expect("read");
        assert_eq!(n, 1);
        poll_once(&poll, &mut events, 0);
        assert!(events.is_empty(), "drained source goes quiet");
    }

    #[test]
    fn reregister_for_writable_and_back() {
        let poll = Poll::new().expect("poll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        poll.register(&server_side, Token(3), Interest::READABLE)
            .expect("register");

        let mut events = Events::with_capacity(8);
        poll_once(&poll, &mut events, 0);
        assert!(events.is_empty(), "nothing to read");

        poll.reregister(
            &server_side,
            Token(3),
            Interest::READABLE.union(Interest::WRITABLE),
        )
        .expect("reregister");
        poll_once(&poll, &mut events, 2_000);
        assert!(
            events
                .iter()
                .any(|e| e.token() == Token(3) && e.is_writable()),
            "an idle socket is writable"
        );

        poll.deregister(&server_side).expect("deregister");
        poll_once(&poll, &mut events, 0);
        assert!(events.is_empty(), "deregistered source reports nothing");
    }

    #[test]
    fn waker_interrupts_a_parked_poll_and_drains() {
        let poll = Poll::new().expect("poll");
        let waker = Waker::new(&poll, Token(0)).expect("waker");
        let remote = waker.clone();
        let waking = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().expect("wake");
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .expect("poll");
        assert!(events.iter().any(|e| e.token() == Token(0)));
        waking.join().expect("waking thread");

        waker.drain();
        poll_once(&poll, &mut events, 0);
        assert!(events.is_empty(), "drained waker goes quiet");

        // Multiple wakes coalesce into one readable state, one drain.
        waker.wake().expect("wake");
        waker.wake().expect("wake");
        poll_once(&poll, &mut events, 2_000);
        assert!(events.iter().any(|e| e.token() == Token(0)));
        waker.drain();
        poll_once(&poll, &mut events, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_reports_readable_for_eof_observation() {
        let poll = Poll::new().expect("poll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poll.register(&server_side, Token(9), Interest::READABLE)
            .expect("register");
        drop(client);

        let mut events = Events::with_capacity(8);
        poll_once(&poll, &mut events, 2_000);
        assert!(events
            .iter()
            .any(|e| e.token() == Token(9) && e.is_readable()));
        let mut buf = [0u8; 8];
        assert_eq!(server_side.read(&mut buf).expect("read"), 0, "EOF");
    }
}
