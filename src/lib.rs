//! # ecovisor-suite — umbrella crate for the Ecovisor reproduction
//!
//! Re-exports the public API of every crate in the workspace so the
//! examples and cross-crate integration tests have a single import root.
//!
//! * [`ecovisor`] — the paper's contribution: virtual energy systems.
//! * [`simkit`] — units, time, RNG, traces.
//! * [`carbon_intel`] — carbon information service substrate.
//! * [`energy_system`] — solar / battery / grid / PSU substrate.
//! * [`container_cop`] — container orchestration substrate.
//! * [`power_telemetry`] — metering and time-series store.
//! * [`workloads`] — application models from the evaluation.
//! * [`carbon_policies`] — the §5 policy suite.
//! * [`experiments`] — per-figure regeneration harness.

#![forbid(unsafe_code)]

pub use carbon_intel;
pub use carbon_policies;
pub use container_cop;
pub use ecovisor;
pub use energy_system;
pub use experiments;
pub use power_telemetry;
pub use simkit;
pub use workloads;
